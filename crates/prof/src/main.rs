//! `dex-prof` — the profiling CLI for the DEX reproduction.
//!
//! ```text
//! dex-prof top [FILE] [--window N]
//! dex-prof diff BASELINE CANDIDATE [--top N]
//! ```
//!
//! `top` renders one window of a `# dex-series v1` telemetry time-series
//! as a per-node dashboard: counter deltas by node, link traffic,
//! per-window latency quantiles. Without FILE it runs the built-in
//! sharing demo workload with telemetry enabled and renders its final
//! window, health alarms included.
//!
//! `diff` aligns two runs' artifacts — span traces, series, or
//! `BENCH_*.json` results, sniffed by header — and reports where the
//! virtual time moved: per span kind, per node, per link, and along the
//! slowest fault's critical path.
//!
//! Exit status: `0` on success, `1` when the rendered window carries
//! health alarms (live mode), `2` on usage or I/O errors.

use std::process::ExitCode;

use dex_core::{Cluster, ClusterConfig, DsmCell};
use dex_prof::{decode_series, render_diff, render_top, sniff_and_decode};
use dex_sim::SimDuration;

const USAGE: &str = "\
dex-prof — telemetry dashboard and cross-run differ for DEX runs

USAGE:
  dex-prof top [FILE] [--window N]
  dex-prof diff BASELINE CANDIDATE [--top N]

SUBCOMMANDS:
  top      render one window of a `# dex-series v1` time-series as a
           per-node dashboard (counters, link traffic, latency
           quantiles). FILE is a series text file; without it, the
           built-in sharing demo runs live with telemetry and the final
           window is rendered together with its health alarms.
  diff     align two artifacts of the same kind — `# dex-spans v1` span
           traces, `# dex-series v1` series, or `dex-bench v1` JSON
           results (format sniffed from the first line) — and report
           where virtual time moved, top movers first.

OPTIONS:
  --window N   (top) render window N instead of the last one
  --top N      (diff) rows per section (default 12)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => {
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let result = match cmd {
        "top" => cmd_top(rest),
        "diff" => cmd_diff(rest),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown subcommand `{other}`\n\n{USAGE}")),
    };
    match result {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(message) => {
            eprintln!("dex-prof: {message}");
            ExitCode::from(2)
        }
    }
}

fn cmd_top(args: &[String]) -> Result<bool, String> {
    let mut file: Option<String> = None;
    let mut window: Option<u64> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--window" => {
                let v = it.next().ok_or("--window needs a value")?;
                window = Some(v.parse().map_err(|_| format!("`{v}` is not a number"))?);
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag `{flag}` for `top`\n\n{USAGE}"))
            }
            path if file.is_none() => file = Some(path.to_string()),
            extra => return Err(format!("unexpected argument `{extra}`")),
        }
    }

    match file {
        Some(path) => {
            let text = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
            let series = decode_series(&text).map_err(|e| format!("{path}: {e}"))?;
            print!("{}", render_top(&series, &[], window));
            Ok(true)
        }
        None => {
            let report = run_demo();
            let series = report.series.expect("telemetry was enabled");
            print!("{}", render_top(&series, &report.health, window));
            Ok(report.health.is_empty())
        }
    }
}

fn cmd_diff(args: &[String]) -> Result<bool, String> {
    let mut files: Vec<&str> = Vec::new();
    let mut top: usize = 12;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--top" => {
                let v = it.next().ok_or("--top needs a value")?;
                top = v.parse().map_err(|_| format!("`{v}` is not a number"))?;
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag `{flag}` for `diff`\n\n{USAGE}"))
            }
            path => files.push(path),
        }
    }
    let [baseline, candidate] = files[..] else {
        return Err(format!(
            "diff needs exactly two files (baseline, candidate)\n\n{USAGE}"
        ));
    };
    let load = |path: &str| -> Result<_, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        sniff_and_decode(&text).map_err(|e| format!("{path}: {e}"))
    };
    let report = render_diff(&load(baseline)?, &load(candidate)?, top.max(1))?;
    print!("{report}");
    Ok(true)
}

/// The live demo: two nodes alternately writing one cell — enough
/// cross-node traffic to light up every dashboard section.
fn run_demo() -> dex_core::RunReport {
    let config = ClusterConfig::new(2).with_telemetry(SimDuration::from_millis(1));
    Cluster::new(config).run(|p| {
        let cell: DsmCell<u64> = p.alloc_cell_tagged(0, "shared_counter");
        let barrier = p.new_barrier(2, "start");
        for node in [0u16, 1u16] {
            p.spawn(move |ctx| {
                if node != 0 {
                    ctx.migrate(node).expect("node exists");
                }
                barrier.wait(ctx);
                for _ in 0..12 {
                    cell.rmw(ctx, |v| v + 1);
                    ctx.compute_ops(300_000);
                }
            });
        }
    })
}
