//! Causal what-if attribution reports.
//!
//! Under deterministic simulation a Coz-style virtual speedup is exact:
//! perturb one cost-model component by a factor, rerun bit-reproducibly,
//! and the end-to-end delta *is* that component's causal contribution —
//! no sampling, no confidence intervals. `dex-check whatif` produces one
//! [`WhatIfEntry`] per (component, factor) experiment; this module owns
//! the report model, its versioned text codec, and the human rendering.
//!
//! ```text
//! # dex-whatif v1
//! # workload <escaped>
//! # baseline <ns>
//! <component>\t<factor>\t<perturbed_ns>
//! ```
//!
//! Free-form fields use the reversible escaping shared with the trace,
//! span, and series codecs ([`escape_field`](crate::codec::escape_field)).
//! Factors encode via `f64`'s `Display` (shortest round-trip form), so
//! decoding reproduces the exact bits.

use std::fmt::Write as _;

use crate::codec::{escape_field, unescape_field};

/// Magic header identifying the what-if format.
pub const WHATIF_HEADER: &str = "# dex-whatif v1";

/// One causal experiment: one component scaled by one factor.
#[derive(Clone, Debug, PartialEq)]
pub struct WhatIfEntry {
    /// The perturbed component's registry name (e.g. `retry_backoff`,
    /// `net.verb_latency`).
    pub component: String,
    /// The cost scale applied (0.5 = twice as fast, 2.0 = twice as slow).
    pub factor: f64,
    /// End-to-end virtual time of the perturbed rerun, nanoseconds.
    pub perturbed_ns: u64,
}

impl WhatIfEntry {
    /// Signed end-to-end movement against `baseline_ns` (negative =
    /// the perturbation made the run faster).
    pub fn delta_ns(&self, baseline_ns: u64) -> i64 {
        self.perturbed_ns as i64 - baseline_ns as i64
    }

    /// The movement as a percentage of the baseline.
    pub fn delta_percent(&self, baseline_ns: u64) -> f64 {
        if baseline_ns == 0 {
            0.0
        } else {
            self.delta_ns(baseline_ns) as f64 * 100.0 / baseline_ns as f64
        }
    }
}

/// A ranked causal attribution report for one workload.
#[derive(Clone, Debug, PartialEq)]
pub struct WhatIfReport {
    /// The workload the sweep ran (free-form label).
    pub workload: String,
    /// Unperturbed end-to-end virtual time, nanoseconds.
    pub baseline_ns: u64,
    /// One entry per experiment, in sweep order.
    pub entries: Vec<WhatIfEntry>,
}

impl WhatIfReport {
    /// Entries ranked by causal impact: largest absolute end-to-end
    /// movement first, name-ordered among ties (so zero-impact
    /// components sort deterministically at the bottom).
    pub fn ranked(&self) -> Vec<&WhatIfEntry> {
        let mut ranked: Vec<&WhatIfEntry> = self.entries.iter().collect();
        ranked.sort_by(|a, b| {
            b.delta_ns(self.baseline_ns)
                .abs()
                .cmp(&a.delta_ns(self.baseline_ns).abs())
                .then_with(|| a.component.cmp(&b.component))
                .then(
                    a.factor
                        .partial_cmp(&b.factor)
                        .unwrap_or(std::cmp::Ordering::Equal),
                )
        });
        ranked
    }
}

/// Serializes a report into the versioned text format.
pub fn encode_whatif(report: &WhatIfReport) -> String {
    let mut out = String::with_capacity(report.entries.len() * 32 + 96);
    out.push_str(WHATIF_HEADER);
    out.push('\n');
    let _ = writeln!(out, "# workload {}", escape_field(&report.workload));
    let _ = writeln!(out, "# baseline {}", report.baseline_ns);
    for e in &report.entries {
        let _ = writeln!(
            out,
            "{}\t{}\t{}",
            escape_field(&e.component),
            e.factor,
            e.perturbed_ns
        );
    }
    out
}

/// Parses the text format produced by [`encode_whatif`].
pub fn decode_whatif(text: &str) -> Result<WhatIfReport, String> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, header)) if header.trim() == WHATIF_HEADER => {}
        Some((_, header)) => {
            return Err(format!(
                "unrecognized what-if header {header:?} (expected {WHATIF_HEADER:?})"
            ))
        }
        None => return Err("empty what-if file".to_string()),
    }
    let mut report = WhatIfReport {
        workload: String::new(),
        baseline_ns: 0,
        entries: Vec::new(),
    };
    for (lineno, line) in lines {
        let line = line.trim_end_matches('\r');
        // Directive/comment lines never contain a raw tab (escaped fields
        // escape theirs), so a `#`-leading line WITH tabs is a data row
        // whose component name happens to start with `#`.
        if line.is_empty() || (line.starts_with('#') && !line.contains('\t')) {
            if let Some(v) = line.strip_prefix("# workload ") {
                report.workload =
                    unescape_field(v).map_err(|e| format!("line {}: workload: {e}", lineno + 1))?;
            } else if let Some(v) = line.strip_prefix("# baseline ") {
                report.baseline_ns = v
                    .trim()
                    .parse()
                    .map_err(|e| format!("line {}: bad baseline: {e}", lineno + 1))?;
            }
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() != 3 {
            return Err(format!(
                "line {}: expected 3 tab-separated fields, got {}",
                lineno + 1,
                fields.len()
            ));
        }
        let component = unescape_field(fields[0])
            .map_err(|e| format!("line {}: component: {e}", lineno + 1))?;
        let factor: f64 = fields[1]
            .parse()
            .map_err(|e| format!("line {}: bad factor: {e}", lineno + 1))?;
        if !factor.is_finite() || factor <= 0.0 {
            return Err(format!(
                "line {}: factor must be finite and positive, got {factor}",
                lineno + 1
            ));
        }
        let perturbed_ns: u64 = fields[2]
            .parse()
            .map_err(|e| format!("line {}: bad perturbed time: {e}", lineno + 1))?;
        report.entries.push(WhatIfEntry {
            component,
            factor,
            perturbed_ns,
        });
    }
    Ok(report)
}

fn us(ns: u64) -> f64 {
    ns as f64 / 1_000.0
}

/// Renders the ranked human table: one row per experiment, largest causal
/// impact first, with the signed end-to-end movement each perturbation
/// produced.
pub fn render_whatif(report: &WhatIfReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "=== DEX what-if causal profile: {} ===",
        report.workload
    );
    let _ = writeln!(out, "baseline end-to-end: {:.1} us", us(report.baseline_ns));
    let _ = writeln!(
        out,
        "{} experiment(s), exact virtual speedups (deterministic rerun per perturbation)\n",
        report.entries.len()
    );
    let _ = writeln!(
        out,
        "{:<26} {:>7} {:>14} {:>12}",
        "component", "factor", "end-to-end", "delta"
    );
    for e in report.ranked() {
        let _ = writeln!(
            out,
            "{:<26} {:>6.2}x {:>11.1} us {:>+11.1}%",
            e.component,
            e.factor,
            us(e.perturbed_ns),
            e.delta_percent(report.baseline_ns),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> WhatIfReport {
        WhatIfReport {
            workload: "pingpong".into(),
            baseline_ns: 1_000_000,
            entries: vec![
                WhatIfEntry {
                    component: "retry_backoff".into(),
                    factor: 0.5,
                    perturbed_ns: 690_000,
                },
                WhatIfEntry {
                    component: "thread_fork".into(),
                    factor: 0.5,
                    perturbed_ns: 996_000,
                },
                WhatIfEntry {
                    component: "backward_update".into(),
                    factor: 0.5,
                    perturbed_ns: 1_000_000,
                },
            ],
        }
    }

    #[test]
    fn round_trip_preserves_all_fields() {
        let report = sample();
        let decoded = decode_whatif(&encode_whatif(&report)).unwrap();
        assert_eq!(decoded, report);
    }

    #[test]
    fn ranking_is_by_absolute_impact_then_name() {
        let report = sample();
        let ranked = report.ranked();
        assert_eq!(ranked[0].component, "retry_backoff");
        assert_eq!(ranked[1].component, "thread_fork");
        assert_eq!(ranked[2].component, "backward_update");
        // A slowdown ranks by magnitude too.
        let mut report = sample();
        report.entries.push(WhatIfEntry {
            component: "protocol_handling".into(),
            factor: 2.0,
            perturbed_ns: 1_500_000,
        });
        assert_eq!(report.ranked()[0].component, "protocol_handling");
    }

    #[test]
    fn delta_math_is_signed_and_percentual() {
        let report = sample();
        let e = &report.entries[0];
        assert_eq!(e.delta_ns(report.baseline_ns), -310_000);
        assert!((e.delta_percent(report.baseline_ns) + 31.0).abs() < 1e-9);
        assert_eq!(e.delta_percent(0), 0.0);
    }

    #[test]
    fn rejects_bad_header_and_malformed_lines() {
        assert!(decode_whatif("").is_err());
        assert!(decode_whatif("# dex-spans v1\n").is_err());
        let short = format!("{WHATIF_HEADER}\nretry_backoff\t0.5\n");
        assert!(decode_whatif(&short).is_err());
        let bad_factor = format!("{WHATIF_HEADER}\nretry_backoff\tzap\t10\n");
        assert!(decode_whatif(&bad_factor).is_err());
        let neg_factor = format!("{WHATIF_HEADER}\nretry_backoff\t-1\t10\n");
        assert!(decode_whatif(&neg_factor).is_err());
    }

    #[test]
    fn empty_report_round_trips_with_workload() {
        let report = WhatIfReport {
            workload: "hostile\tname\n".into(),
            baseline_ns: 42,
            entries: vec![],
        };
        let decoded = decode_whatif(&encode_whatif(&report)).unwrap();
        assert_eq!(decoded, report);
    }

    #[test]
    fn hostile_component_names_round_trip() {
        for s in ["tab\there", "-", "", "new\nline", "back\\slash", "# hash"] {
            let mut report = sample();
            report.entries[0].component = s.to_string();
            let decoded = decode_whatif(&encode_whatif(&report)).unwrap();
            assert_eq!(decoded.entries[0].component, s);
        }
    }

    #[test]
    fn factors_round_trip_exactly() {
        // f64 Display is shortest-round-trip: the decoded factor must be
        // bit-identical, including awkward ones.
        for f in [0.1, 1.0 / 3.0, 0.875, 1e-9, 123456.789] {
            let report = WhatIfReport {
                workload: "w".into(),
                baseline_ns: 1,
                entries: vec![WhatIfEntry {
                    component: "c".into(),
                    factor: f,
                    perturbed_ns: 1,
                }],
            };
            let decoded = decode_whatif(&encode_whatif(&report)).unwrap();
            assert_eq!(decoded.entries[0].factor.to_bits(), f.to_bits());
        }
    }

    #[test]
    fn render_shows_ranked_rows() {
        let text = render_whatif(&sample());
        assert!(text.contains("pingpong"));
        assert!(text.contains("baseline end-to-end: 1000.0 us"));
        let retry = text.find("retry_backoff").unwrap();
        let fork = text.find("thread_fork").unwrap();
        assert!(retry < fork, "dominant component renders first:\n{text}");
        assert!(text.contains("-31.0%"), "{text}");
    }
}
