//! Cross-run regression differ.
//!
//! When the perf gate flags a drifted `BENCH_*.json`, this module turns
//! "the number moved" into "where the virtual time went": it aligns two
//! runs' artifacts — span traces (`# dex-spans v1`), telemetry series
//! (`# dex-series v1`), or bench results (`dex-bench v1` JSON) — and
//! reports the movement per span kind, per node, per link, and along the
//! slowest fault's critical path. Spans are matched by (kind, node,
//! label) group and causal position (start order within the group), so
//! "forwarded grants got 2.1× slower on node 2" falls straight out of
//! the aggregates.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use dex_core::{Span, SpanKind};
use dex_net::TimeSeries;

use crate::series_codec::{decode_series, SERIES_HEADER};
use crate::span_codec::{decode_spans, SPANS_HEADER};

/// One aligned row of a diff: the same key measured in both runs.
#[derive(Clone, Debug, PartialEq)]
pub struct DiffRow {
    /// What moved (a span kind, `kind @ node N`, a counter, a bench field).
    pub key: String,
    /// Occurrences in the baseline run (span count / counter total).
    pub base_count: u64,
    /// Occurrences in the candidate run.
    pub cand_count: u64,
    /// Total nanoseconds (or unit value) in the baseline run.
    pub base_ns: u64,
    /// Total nanoseconds (or unit value) in the candidate run.
    pub cand_ns: u64,
}

impl DiffRow {
    /// Signed movement, candidate minus baseline.
    pub fn delta_ns(&self) -> i64 {
        self.cand_ns as i64 - self.base_ns as i64
    }

    /// Candidate-over-baseline ratio (`2.0` = twice as slow). `None`
    /// when the baseline is zero (the ratio would be meaningless).
    pub fn ratio(&self) -> Option<f64> {
        (self.base_ns > 0).then(|| self.cand_ns as f64 / self.base_ns as f64)
    }
}

/// The aligned comparison of two runs' span forests.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanDiff {
    /// Total time per span kind, both runs — sorted by |delta| descending
    /// (ties broken by key), so `per_kind[0]` names the top mover.
    pub per_kind: Vec<DiffRow>,
    /// Total time per (span kind, node) — same order.
    pub per_kind_node: Vec<DiffRow>,
    /// Per-kind attribution inside the slowest fault's causal subtree of
    /// each run (the measured critical path), plus a `fault (total)` row.
    pub critical_path: Vec<DiffRow>,
}

fn sort_rows(rows: &mut [DiffRow]) {
    rows.sort_by(|a, b| {
        b.delta_ns()
            .abs()
            .cmp(&a.delta_ns().abs())
            .then_with(|| a.key.cmp(&b.key))
    });
}

fn accumulate<K: Ord>(
    map: &mut BTreeMap<K, (u64, u64, u64, u64)>,
    key: K,
    count: u64,
    ns: u64,
    candidate: bool,
) {
    let e = map.entry(key).or_insert((0, 0, 0, 0));
    if candidate {
        e.1 += count;
        e.3 += ns;
    } else {
        e.0 += count;
        e.2 += ns;
    }
}

fn rows_from<K: Ord>(
    map: BTreeMap<K, (u64, u64, u64, u64)>,
    render_key: impl Fn(&K) -> String,
) -> Vec<DiffRow> {
    let mut rows: Vec<DiffRow> = map
        .iter()
        .map(|(k, &(bc, cc, bns, cns))| DiffRow {
            key: render_key(k),
            base_count: bc,
            cand_count: cc,
            base_ns: bns,
            cand_ns: cns,
        })
        .collect();
    sort_rows(&mut rows);
    rows
}

/// The span ids in the causal subtree of the slowest `Fault` span
/// (children recorded on any node — causality crosses machine
/// boundaries), or an empty set when the run recorded no faults.
fn slowest_fault_subtree(spans: &[Span]) -> std::collections::BTreeSet<u64> {
    let root = spans
        .iter()
        .filter(|s| s.kind == SpanKind::Fault)
        .max_by_key(|s| (s.duration().as_nanos(), std::cmp::Reverse(s.id.0)));
    let mut members = std::collections::BTreeSet::new();
    let Some(root) = root else {
        return members;
    };
    members.insert(root.id.0);
    // Spans are a forest with arbitrary record order: iterate to a fixed
    // point instead of assuming parents precede children.
    loop {
        let before = members.len();
        for s in spans {
            if members.contains(&s.parent.0) {
                members.insert(s.id.0);
            }
        }
        if members.len() == before {
            return members;
        }
    }
}

/// Aligns two span forests and aggregates where the virtual time moved.
pub fn diff_spans(base: &[Span], cand: &[Span]) -> SpanDiff {
    let mut by_kind: BTreeMap<&'static str, (u64, u64, u64, u64)> = BTreeMap::new();
    let mut by_kind_node: BTreeMap<(&'static str, u16), (u64, u64, u64, u64)> = BTreeMap::new();
    for (spans, candidate) in [(base, false), (cand, true)] {
        for s in spans {
            let ns = s.duration().as_nanos();
            accumulate(&mut by_kind, s.kind.as_str(), 1, ns, candidate);
            accumulate(
                &mut by_kind_node,
                (s.kind.as_str(), s.node.0),
                1,
                ns,
                candidate,
            );
        }
    }

    let mut critical: BTreeMap<String, (u64, u64, u64, u64)> = BTreeMap::new();
    for (spans, candidate) in [(base, false), (cand, true)] {
        let subtree = slowest_fault_subtree(spans);
        for s in spans.iter().filter(|s| subtree.contains(&s.id.0)) {
            let key = if s.kind == SpanKind::Fault {
                "fault (total)".to_string()
            } else {
                s.kind.as_str().to_string()
            };
            accumulate(&mut critical, key, 1, s.duration().as_nanos(), candidate);
        }
    }

    SpanDiff {
        per_kind: rows_from(by_kind, |k| k.to_string()),
        per_kind_node: rows_from(by_kind_node, |(k, n)| format!("{k} @ node {n}")),
        critical_path: rows_from(critical, |k| k.clone()),
    }
}

/// Aligns two telemetry series by (scope, counter name) — per-node and
/// per-link movement — summing each counter's deltas over all windows.
pub fn diff_series(base: &TimeSeries, cand: &TimeSeries) -> Vec<DiffRow> {
    let mut map: BTreeMap<(String, String), (u64, u64, u64, u64)> = BTreeMap::new();
    for (series, candidate) in [(base, false), (cand, true)] {
        for p in &series.counters {
            accumulate(
                &mut map,
                (p.scope.to_string(), p.name.clone()),
                1,
                p.delta,
                candidate,
            );
        }
    }
    rows_from(map, |(scope, name)| format!("{scope} {name}"))
}

/// Aligns two `dex-bench v1` results field by field.
pub fn diff_bench(base: &[(String, u64)], cand: &[(String, u64)]) -> Vec<DiffRow> {
    let mut map: BTreeMap<String, (u64, u64, u64, u64)> = BTreeMap::new();
    for (fields, candidate) in [(base, false), (cand, true)] {
        for (name, value) in fields {
            accumulate(&mut map, name.clone(), 1, *value, candidate);
        }
    }
    rows_from(map, |k| k.clone())
}

/// The flat numeric fields of a `dex-bench v1` JSON file, in document
/// order. A deliberately small parser: the writer (`dex_bench::perf`)
/// emits one flat object of string and integer fields, and only the
/// integers matter to a diff.
pub fn bench_numeric_fields(text: &str) -> Result<Vec<(String, u64)>, String> {
    let mut fields = Vec::new();
    let mut chars = text.char_indices().peekable();
    let mut key: Option<String> = None;
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => {
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some((_, '"')) => break,
                        Some((_, '\\')) => match chars.next() {
                            Some((_, e)) => s.push(e),
                            None => return Err("unterminated escape".into()),
                        },
                        Some((_, c)) => s.push(c),
                        None => return Err(format!("unterminated string at byte {i}")),
                    }
                }
                if key.is_none() {
                    key = Some(s);
                }
            }
            ':' => {}
            c if c.is_ascii_digit() => {
                let mut n = String::from(c);
                while let Some(&(_, d)) = chars.peek() {
                    if d.is_ascii_digit() {
                        n.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let name = key
                    .take()
                    .ok_or(format!("number without a key at byte {i}"))?;
                let value = n.parse().map_err(|e| format!("field {name}: {e}"))?;
                fields.push((name, value));
            }
            ',' | '}' => key = None,
            _ => {}
        }
    }
    if fields.is_empty() {
        return Err("no numeric fields found (is this a dex-bench v1 file?)".into());
    }
    Ok(fields)
}

/// One decoded diffable artifact, sniffed by its header.
pub enum DiffInput {
    /// A `# dex-spans v1` span trace.
    Spans(Vec<Span>),
    /// A `# dex-series v1` telemetry series.
    Series(Box<TimeSeries>),
    /// A `dex-bench v1` JSON result, reduced to its numeric fields.
    Bench(Vec<(String, u64)>),
}

impl DiffInput {
    /// What kind of artifact this is, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            DiffInput::Spans(_) => "span trace",
            DiffInput::Series(_) => "telemetry series",
            DiffInput::Bench(_) => "bench result",
        }
    }
}

/// Decodes a diffable artifact, deciding the format from its first line.
pub fn sniff_and_decode(text: &str) -> Result<DiffInput, String> {
    let first = text.lines().next().unwrap_or("").trim();
    if first == SPANS_HEADER {
        return decode_spans(text).map(DiffInput::Spans);
    }
    if first == SERIES_HEADER {
        return decode_series(text).map(|s| DiffInput::Series(Box::new(s)));
    }
    if first.starts_with('{') {
        return bench_numeric_fields(text).map(DiffInput::Bench);
    }
    Err(format!(
        "unrecognized artifact (first line {first:?}); expected {SPANS_HEADER:?}, {SERIES_HEADER:?}, or dex-bench v1 JSON"
    ))
}

fn us(ns: u64) -> f64 {
    ns as f64 / 1_000.0
}

fn render_rows(out: &mut String, rows: &[DiffRow], unit_ns: bool, top: usize) {
    if rows.is_empty() {
        let _ = writeln!(out, "  (nothing recorded on either side)");
        return;
    }
    for row in rows.iter().take(top) {
        let ratio = match row.ratio() {
            Some(r) if (r - 1.0).abs() < 0.005 => "  ~same".to_string(),
            Some(r) if r >= 1.0 => format!("{r:>5.2}x slower"),
            Some(r) if r > 0.0 => format!("{:>5.2}x faster", 1.0 / r),
            Some(_) => "  gone".to_string(),
            None if row.cand_ns == 0 => "  ~same".to_string(),
            None => "   new".to_string(),
        };
        if unit_ns {
            let _ = writeln!(
                out,
                "  {:<34} {:>9.1} us -> {:>9.1} us  {:>+10.1} us  {ratio}   ({} -> {} span(s))",
                row.key,
                us(row.base_ns),
                us(row.cand_ns),
                us(row.cand_ns) - us(row.base_ns),
                row.base_count,
                row.cand_count,
            );
        } else {
            let _ = writeln!(
                out,
                "  {:<34} {:>12} -> {:>12}  {:>+12}  {ratio}",
                row.key,
                row.base_ns,
                row.cand_ns,
                row.delta_ns(),
            );
        }
    }
    if rows.len() > top {
        let _ = writeln!(out, "  ... {} more row(s) elided", rows.len() - top);
    }
}

/// Renders the human diff report for two artifacts of the same kind.
/// `top` bounds how many rows each section shows.
pub fn render_diff(base: &DiffInput, cand: &DiffInput, top: usize) -> Result<String, String> {
    let mut out = String::new();
    let _ = writeln!(out, "=== DEX cross-run diff (baseline -> candidate) ===");
    match (base, cand) {
        (DiffInput::Spans(b), DiffInput::Spans(c)) => {
            let diff = diff_spans(b, c);
            let _ = writeln!(out, "{} -> {} span(s)\n", b.len(), c.len());
            let _ = writeln!(out, "-- movement per span kind (top movers first) --");
            render_rows(&mut out, &diff.per_kind, true, top);
            let _ = writeln!(out, "\n-- movement per span kind and node --");
            render_rows(&mut out, &diff.per_kind_node, true, top);
            let _ = writeln!(out, "\n-- slowest fault, critical-path attribution --");
            render_rows(&mut out, &diff.critical_path, true, top);
        }
        (DiffInput::Series(b), DiffInput::Series(c)) => {
            let rows = diff_series(b, c);
            let _ = writeln!(out, "{} -> {} window(s)\n", b.windows, c.windows);
            let _ = writeln!(out, "-- counter movement per node and link --");
            render_rows(&mut out, &rows, false, top);
        }
        (DiffInput::Bench(b), DiffInput::Bench(c)) => {
            let rows = diff_bench(b, c);
            let _ = writeln!(out, "{} numeric field(s)\n", rows.len());
            let _ = writeln!(out, "-- bench field movement --");
            render_rows(&mut out, &rows, false, top);
        }
        (b, c) => return Err(format!("cannot diff a {} against a {}", b.kind(), c.kind())),
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_core::SpanId;
    use dex_net::{CounterPoint, NodeId, SeriesScope};
    use dex_os::Tid;
    use dex_sim::SimTime;

    fn span(id: u64, parent: u64, kind: SpanKind, node: u16, start: u64, end: u64) -> Span {
        Span {
            id: SpanId(id),
            parent: SpanId(parent),
            kind,
            node: NodeId(node),
            task: Tid(1),
            start: SimTime::from_nanos(start),
            end: SimTime::from_nanos(end),
            label: "t",
            tag: None,
        }
    }

    #[test]
    fn top_mover_is_the_slowed_kind() {
        let base = vec![
            span(1, 0, SpanKind::Fault, 1, 0, 20_000),
            span(2, 1, SpanKind::OwnerForward, 2, 5_000, 7_500),
            span(3, 1, SpanKind::PageFixup, 1, 18_000, 19_000),
        ];
        let mut cand = base.clone();
        // The forwarded grant got 4x slower on node 2; the fault grew.
        cand[1].end = SimTime::from_nanos(15_000);
        cand[0].end = SimTime::from_nanos(27_500);
        let diff = diff_spans(&base, &cand);
        assert_eq!(diff.per_kind[0].key, "fault");
        assert_eq!(diff.per_kind[1].key, "owner_forward");
        assert_eq!(diff.per_kind[1].ratio(), Some(4.0));
        assert_eq!(diff.per_kind_node[1].key, "owner_forward @ node 2");
        // The critical-path section attributes inside the slowest fault.
        assert!(diff
            .critical_path
            .iter()
            .any(|r| r.key == "owner_forward" && r.delta_ns() == 7_500));
    }

    #[test]
    fn critical_path_follows_causality_to_fixed_point() {
        // Child recorded before parent, grandchild on another node.
        let base = vec![
            span(3, 2, SpanKind::PageFixup, 1, 8, 9),
            span(2, 1, SpanKind::DirectoryHandling, 0, 2, 4),
            span(1, 0, SpanKind::Fault, 1, 0, 10),
            span(9, 0, SpanKind::Fault, 1, 0, 2), // faster fault, excluded
        ];
        let diff = diff_spans(&base, &base);
        let keys: Vec<&str> = diff.critical_path.iter().map(|r| r.key.as_str()).collect();
        assert!(keys.contains(&"fault (total)"));
        assert!(keys.contains(&"directory_handling"));
        assert!(keys.contains(&"page_fixup"));
        let total = diff
            .critical_path
            .iter()
            .find(|r| r.key == "fault (total)")
            .unwrap();
        assert_eq!(total.base_ns, 10, "only the slowest fault counts");
    }

    #[test]
    fn series_diff_keys_by_scope_and_name() {
        let mk = |delta| TimeSeries {
            counters: vec![
                CounterPoint {
                    window: 0,
                    scope: SeriesScope::Node(2),
                    name: "protocol.forwards".into(),
                    delta,
                },
                CounterPoint {
                    window: 1,
                    scope: SeriesScope::Link(0, 1),
                    name: "bytes".into(),
                    delta: 100,
                },
            ],
            ..TimeSeries::default()
        };
        let rows = diff_series(&mk(5), &mk(9));
        assert_eq!(rows[0].key, "node2 protocol.forwards");
        assert_eq!(rows[0].delta_ns(), 4);
        assert!(rows.iter().any(|r| r.key == "link0>1 bytes"));
    }

    #[test]
    fn bench_json_fields_parse_and_diff() {
        let base = r#"{"schema": "dex-bench v1", "name": "shard", "virtual_time_ns": 1000, "msgs_sent": 42}"#;
        let cand = r#"{"schema": "dex-bench v1", "name": "shard", "virtual_time_ns": 2200, "msgs_sent": 42}"#;
        let b = bench_numeric_fields(base).unwrap();
        assert_eq!(
            b,
            vec![("virtual_time_ns".into(), 1000), ("msgs_sent".into(), 42)]
        );
        let rows = diff_bench(&b, &bench_numeric_fields(cand).unwrap());
        assert_eq!(rows[0].key, "virtual_time_ns");
        assert_eq!(rows[0].ratio(), Some(2.2));
    }

    #[test]
    fn sniffing_dispatches_on_header() {
        assert!(matches!(
            sniff_and_decode("# dex-spans v1\n"),
            Ok(DiffInput::Spans(_))
        ));
        assert!(matches!(
            sniff_and_decode("# dex-series v1\n"),
            Ok(DiffInput::Series(_))
        ));
        assert!(matches!(
            sniff_and_decode("{\"schema\": \"dex-bench v1\", \"x\": 3}"),
            Ok(DiffInput::Bench(_))
        ));
        assert!(sniff_and_decode("hello").is_err());
        let err = render_diff(
            &sniff_and_decode("# dex-spans v1\n").unwrap(),
            &sniff_and_decode("# dex-series v1\n").unwrap(),
            10,
        )
        .unwrap_err();
        assert!(err.contains("cannot diff"), "{err}");
    }

    #[test]
    fn render_names_the_mover_and_elides_long_tails() {
        let base = vec![
            span(1, 0, SpanKind::Fault, 1, 0, 10_000),
            span(2, 1, SpanKind::OwnerForward, 2, 2_000, 4_000),
        ];
        let mut cand = base.clone();
        cand[1].end = SimTime::from_nanos(6_200);
        let text = render_diff(&DiffInput::Spans(base), &DiffInput::Spans(cand), 10).unwrap();
        assert!(text.contains("owner_forward @ node 2"), "{text}");
        assert!(text.contains("2.10x slower"), "{text}");
    }

    #[test]
    fn vanished_and_new_kinds_render_without_infinities() {
        let base = vec![span(1, 0, SpanKind::Invalidation, 0, 0, 1_000)];
        let cand = vec![span(1, 0, SpanKind::InvalidateBatch, 0, 0, 800)];
        let text = render_diff(&DiffInput::Spans(base), &DiffInput::Spans(cand), 10).unwrap();
        assert!(text.contains("gone"), "{text}");
        assert!(text.contains("new"), "{text}");
        assert!(!text.contains("inf"), "{text}");
    }
}
