//! Text serialization of causal span forests.
//!
//! Companion to the fault-trace codec: line-oriented, tab-separated,
//! versioned by a header line, free-form fields escaped reversibly with
//! the same scheme ([`escape_field`](crate::codec::escape_field)).
//!
//! ```text
//! # dex-spans v1
//! <id>\t<parent>\t<kind>\t<node>\t<task>\t<start_ns>\t<end_ns>\t<label>\t<tag-or-->
//! ```
//!
//! Spans are written in completion order, so children may precede their
//! parents; consumers must index by id before walking the forest.

use dex_core::{Span, SpanId, SpanKind};
use dex_net::NodeId;
use dex_os::Tid;
use dex_sim::SimTime;

use crate::codec::{escape_field, intern_site, unescape_field};

/// Magic header identifying the span format.
pub const SPANS_HEADER: &str = "# dex-spans v1";

/// Serializes `spans` into the versioned text format.
pub fn encode_spans(spans: &[Span]) -> String {
    encode_spans_with_dropped(spans, 0)
}

/// Like [`encode_spans`], additionally recording how many spans a bounded
/// capture buffer evicted (see
/// [`SpanBuffer::dropped`](dex_core::SpanBuffer::dropped)) as a
/// `# dropped N` line.
pub fn encode_spans_with_dropped(spans: &[Span], dropped: u64) -> String {
    let mut out = String::with_capacity(spans.len() * 64 + SPANS_HEADER.len() + 1);
    out.push_str(SPANS_HEADER);
    out.push('\n');
    if dropped > 0 {
        out.push_str(&format!("# dropped {dropped}\n"));
    }
    for s in spans {
        out.push_str(&format!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
            s.id.0,
            s.parent.0,
            s.kind,
            s.node.0,
            s.task.0,
            s.start.as_nanos(),
            s.end.as_nanos(),
            escape_field(s.label),
            match &s.tag {
                Some(tag) => escape_field(tag),
                None => "-".to_string(),
            }
        ));
    }
    out
}

/// Parses the text format produced by [`encode_spans`].
pub fn decode_spans(text: &str) -> Result<Vec<Span>, String> {
    decode_spans_with_dropped(text).map(|(spans, _)| spans)
}

/// Like [`decode_spans`], also returning the capture-time eviction count
/// recorded by [`encode_spans_with_dropped`] (0 when absent).
pub fn decode_spans_with_dropped(text: &str) -> Result<(Vec<Span>, u64), String> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, header)) if header.trim() == SPANS_HEADER => {}
        Some((_, header)) => {
            return Err(format!(
                "unrecognized span header {header:?} (expected {SPANS_HEADER:?})"
            ))
        }
        None => return Err("empty span file".to_string()),
    }
    let mut spans = Vec::new();
    let mut dropped: u64 = 0;
    for (lineno, line) in lines {
        // Strip only the CR of CRLF endings: trailing spaces are field
        // content (the escaping keeps structural characters out).
        let line = line.trim_end_matches('\r');
        if line.is_empty() || line.starts_with('#') {
            if let Some(n) = line.strip_prefix("# dropped ") {
                dropped += n
                    .trim()
                    .parse::<u64>()
                    .map_err(|e| format!("line {}: bad dropped count: {e}", lineno + 1))?;
            }
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() != 9 {
            return Err(format!(
                "line {}: expected 9 tab-separated fields, got {}",
                lineno + 1,
                fields.len()
            ));
        }
        let parse_u64 = |s: &str, what: &str| -> Result<u64, String> {
            s.parse()
                .map_err(|e| format!("line {}: bad {what}: {e}", lineno + 1))
        };
        let kind = SpanKind::parse(fields[2])
            .ok_or_else(|| format!("line {}: unknown span kind {:?}", lineno + 1, fields[2]))?;
        let node = NodeId(
            fields[3]
                .parse()
                .map_err(|e| format!("line {}: bad node: {e}", lineno + 1))?,
        );
        let label = intern_site(
            &unescape_field(fields[7]).map_err(|e| format!("line {}: label: {e}", lineno + 1))?,
        );
        let tag = match fields[8] {
            "-" => None,
            tag => Some(unescape_field(tag).map_err(|e| format!("line {}: tag: {e}", lineno + 1))?),
        };
        spans.push(Span {
            id: SpanId(parse_u64(fields[0], "id")?),
            parent: SpanId(parse_u64(fields[1], "parent")?),
            kind,
            node,
            task: Tid(parse_u64(fields[4], "task")?),
            start: SimTime::from_nanos(parse_u64(fields[5], "start")?),
            end: SimTime::from_nanos(parse_u64(fields[6], "end")?),
            label,
            tag,
        });
    }
    Ok((spans, dropped))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Span> {
        vec![
            Span {
                id: SpanId(2),
                parent: SpanId(1),
                kind: SpanKind::DirectoryHandling,
                node: NodeId(0),
                task: Tid(u64::MAX),
                start: SimTime::from_nanos(1_000),
                end: SimTime::from_nanos(3_000),
                label: "page_request_write",
                tag: None,
            },
            Span {
                id: SpanId(1),
                parent: SpanId::NONE,
                kind: SpanKind::Fault,
                node: NodeId(1),
                task: Tid(3),
                start: SimTime::ZERO,
                end: SimTime::from_nanos(158_800),
                label: "write_fault",
                tag: Some("centroids".into()),
            },
        ]
    }

    #[test]
    fn round_trip_preserves_all_fields() {
        let spans = sample();
        let decoded = decode_spans(&encode_spans(&spans)).unwrap();
        assert_eq!(decoded.len(), 2);
        for (a, b) in spans.iter().zip(&decoded) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.parent, b.parent);
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.node, b.node);
            assert_eq!(a.task, b.task);
            assert_eq!(a.start, b.start);
            assert_eq!(a.end, b.end);
            assert_eq!(a.label, b.label);
            assert_eq!(a.tag, b.tag);
        }
    }

    #[test]
    fn rejects_bad_header_and_malformed_lines() {
        assert!(decode_spans("").is_err());
        assert!(decode_spans("# dex-trace v1\n").is_err());
        let short = format!("{SPANS_HEADER}\n1\t0\tfault\n");
        assert!(decode_spans(&short).is_err());
        let bad_kind = format!("{SPANS_HEADER}\n1\t0\tzap\t0\t0\t0\t1\tx\t-\n");
        assert!(decode_spans(&bad_kind).is_err());
    }

    #[test]
    fn empty_forest_and_dropped_count_round_trip() {
        let (spans, dropped) = decode_spans_with_dropped(&encode_spans(&[])).unwrap();
        assert!(spans.is_empty());
        assert_eq!(dropped, 0);
        let text = encode_spans_with_dropped(&sample(), 7);
        let (spans, dropped) = decode_spans_with_dropped(&text).unwrap();
        assert_eq!(spans.len(), 2);
        assert_eq!(dropped, 7);
    }

    #[test]
    fn hostile_labels_and_tags_round_trip() {
        for s in ["tab\there", "-", "", "new\nline", "back\\slash"] {
            let mut spans = sample();
            spans[0].label = intern_site(s);
            spans[0].tag = Some(s.to_string());
            let decoded = decode_spans(&encode_spans(&spans)).unwrap();
            assert_eq!(decoded[0].label, s);
            assert_eq!(decoded[0].tag.as_deref(), Some(s));
        }
    }
}
