//! Post-processing of page-fault traces.
//!
//! The paper's workflow (§IV-A): run the application under tracing, then
//! analyze the six-tuple trace offline to find the program objects and
//! code locations that cause cross-node traffic — hot pages, hot sites,
//! per-thread access patterns, fault rates over time, and above all
//! *false-sharing suspects*: pages carrying more than one object with
//! conflicting access from multiple nodes.

use std::collections::{BTreeMap, BTreeSet};

use dex_core::{FaultEvent, FaultKind};
use dex_net::NodeId;
use dex_os::{Tid, Vpn};
use dex_sim::SimDuration;

/// Per-page aggregate statistics.
#[derive(Clone, Debug, Default)]
pub struct PageStat {
    /// Read faults on the page.
    pub reads: u64,
    /// Write faults on the page.
    pub writes: u64,
    /// Invalidations applied to the page.
    pub invalidations: u64,
    /// Nodes that faulted on the page.
    pub nodes: BTreeSet<NodeId>,
    /// Distinct object/VMA tags attributed to faults on the page.
    pub tags: BTreeSet<String>,
    /// Distinct code sites that faulted on the page.
    pub sites: BTreeSet<&'static str>,
}

impl PageStat {
    /// Total protocol events on the page.
    pub fn total(&self) -> u64 {
        self.reads + self.writes + self.invalidations
    }
}

/// Per-code-site aggregate statistics.
#[derive(Clone, Debug, Default)]
pub struct SiteStat {
    /// Read faults attributed to the site.
    pub reads: u64,
    /// Write faults attributed to the site.
    pub writes: u64,
    /// Distinct pages the site faulted on.
    pub pages: BTreeSet<u64>,
}

impl SiteStat {
    /// Total faults from the site.
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }
}

/// A page flagged as a likely false-sharing victim, with the evidence.
#[derive(Clone, Debug)]
pub struct FalseSharingSuspect {
    /// The suspect page.
    pub vpn: Vpn,
    /// Protocol events observed on it.
    pub events: u64,
    /// Nodes contending for it.
    pub nodes: Vec<NodeId>,
    /// The distinct objects co-located on it — more than one object with
    /// cross-node conflicting access is the false-sharing signature.
    pub tags: Vec<String>,
    /// Write faults (the conflicting half).
    pub writes: u64,
}

/// The result of analyzing a fault trace.
///
/// # Examples
///
/// ```
/// use dex_core::{Cluster, ClusterConfig};
/// use dex_prof::Profile;
///
/// let cluster = Cluster::new(ClusterConfig::new(2).with_trace());
/// let report = cluster.run(|p| {
///     let a = p.alloc_cell_tagged::<u64>(0, "obj_a"); // packed together:
///     let b = p.alloc_cell_tagged::<u64>(0, "obj_b"); // same page
///     let barrier = p.new_barrier(2, "start");
///     p.spawn(move |ctx| {
///         ctx.migrate(1).unwrap();
///         barrier.wait(ctx);
///         for _ in 0..100 {
///             a.rmw(ctx, |v| v + 1);
///             ctx.compute_ops(10_000);
///         }
///     });
///     p.spawn(move |ctx| {
///         barrier.wait(ctx);
///         for _ in 0..100 {
///             b.rmw(ctx, |v| v + 1);
///             ctx.compute_ops(10_000);
///         }
///     });
/// });
/// let profile = Profile::from_trace(&report.trace);
/// let suspects = profile.false_sharing_suspects();
/// assert!(!suspects.is_empty(), "obj_a and obj_b share a page");
/// assert!(suspects[0].tags.len() >= 2);
/// ```
#[derive(Debug, Default)]
pub struct Profile {
    pages: BTreeMap<u64, PageStat>,
    sites: BTreeMap<&'static str, SiteStat>,
    tasks: BTreeMap<Tid, u64>,
    times: Vec<u64>,
    per_node_events: Vec<(NodeId, FaultKind)>,
    events: usize,
}

/// Protocol traffic one node generated (a row of
/// [`Profile::node_matrix`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeTraffic {
    /// Read faults raised on the node.
    pub reads: u64,
    /// Write faults raised on the node.
    pub writes: u64,
    /// Invalidations applied to the node.
    pub invalidations: u64,
}

impl Profile {
    /// Builds a profile from a fault trace.
    pub fn from_trace(trace: &[FaultEvent]) -> Self {
        let mut profile = Profile::default();
        for event in trace {
            profile.events += 1;
            profile.times.push(event.time.as_nanos());
            profile.per_node_events.push((event.node, event.kind));

            let page = profile.pages.entry(event.addr.vpn().index()).or_default();
            match event.kind {
                FaultKind::Read => page.reads += 1,
                FaultKind::Write => page.writes += 1,
                FaultKind::Invalidate => page.invalidations += 1,
            }
            page.nodes.insert(event.node);
            if let Some(tag) = &event.tag {
                page.tags.insert(tag.clone());
            }
            page.sites.insert(event.site);

            if event.kind != FaultKind::Invalidate {
                let site = profile.sites.entry(event.site).or_default();
                match event.kind {
                    FaultKind::Read => site.reads += 1,
                    FaultKind::Write => site.writes += 1,
                    FaultKind::Invalidate => unreachable!("filtered above"),
                }
                site.pages.insert(event.addr.vpn().index());
                *profile.tasks.entry(event.task).or_default() += 1;
            }
        }
        profile
    }

    /// Number of trace events analyzed.
    pub fn events(&self) -> usize {
        self.events
    }

    /// Pages ranked by total protocol events, hottest first.
    pub fn hot_pages(&self) -> Vec<(Vpn, &PageStat)> {
        let mut pages: Vec<_> = self.pages.iter().map(|(k, v)| (Vpn::new(*k), v)).collect();
        pages.sort_by(|a, b| b.1.total().cmp(&a.1.total()).then(a.0.cmp(&b.0)));
        pages
    }

    /// Code sites ranked by fault count, hottest first.
    pub fn hot_sites(&self) -> Vec<(&'static str, &SiteStat)> {
        let mut sites: Vec<_> = self.sites.iter().map(|(k, v)| (*k, v)).collect();
        sites.sort_by(|a, b| b.1.total().cmp(&a.1.total()).then(a.0.cmp(b.0)));
        sites
    }

    /// Fault counts per task (per-thread access pattern summary).
    pub fn per_task(&self) -> Vec<(Tid, u64)> {
        self.tasks.iter().map(|(k, v)| (*k, *v)).collect()
    }

    /// Fault counts over time in `bucket`-sized windows from the start of
    /// the run (the paper's "page fault frequency over time" analysis).
    ///
    /// # Panics
    ///
    /// Panics if `bucket` is zero.
    pub fn timeline(&self, bucket: SimDuration) -> Vec<(SimDuration, u64)> {
        assert!(!bucket.is_zero(), "timeline bucket must be non-zero");
        if self.times.is_empty() {
            return Vec::new();
        }
        let width = bucket.as_nanos();
        let mut counts: BTreeMap<u64, u64> = BTreeMap::new();
        for &t in &self.times {
            *counts.entry(t / width).or_default() += 1;
        }
        let last_bucket = *counts.keys().next_back().expect("non-empty");
        (0..=last_bucket)
            .map(|b| {
                (
                    SimDuration::from_nanos(b * width),
                    counts.get(&b).copied().unwrap_or(0),
                )
            })
            .collect()
    }

    /// Pages whose fault pattern matches the false-sharing signature:
    /// contended from more than one node, written at least once, and
    /// (most damning) carrying more than one distinct object.
    pub fn false_sharing_suspects(&self) -> Vec<FalseSharingSuspect> {
        let mut suspects: Vec<FalseSharingSuspect> = self
            .pages
            .iter()
            .filter(|(_, s)| s.nodes.len() >= 2 && s.writes > 0 && s.tags.len() >= 2)
            .map(|(vpn, s)| FalseSharingSuspect {
                vpn: Vpn::new(*vpn),
                events: s.total(),
                nodes: s.nodes.iter().copied().collect(),
                tags: s.tags.iter().cloned().collect(),
                writes: s.writes,
            })
            .collect();
        suspects.sort_by_key(|s| std::cmp::Reverse(s.events));
        suspects
    }

    /// Per-node fault counts as a matrix row per node: how much of the
    /// protocol traffic each node generates, per fault kind — the
    /// node-level view of "which components caused the most cross-node
    /// traffic" (§IV-A).
    pub fn node_matrix(&self) -> Vec<(NodeId, NodeTraffic)> {
        let mut map: BTreeMap<NodeId, NodeTraffic> = BTreeMap::new();
        for event in &self.per_node_events {
            let entry = map.entry(event.0).or_default();
            match event.1 {
                FaultKind::Read => entry.reads += 1,
                FaultKind::Write => entry.writes += 1,
                FaultKind::Invalidate => entry.invalidations += 1,
            }
        }
        map.into_iter().collect()
    }

    /// Exports the per-page statistics as CSV
    /// (`vpn,reads,writes,invalidations,nodes,tags`), for spreadsheet or
    /// plotting pipelines — the paper's toolchain hands analysts exactly
    /// this kind of flattened table.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("vpn,reads,writes,invalidations,nodes,tags\n");
        for (vpn, stat) in self.hot_pages() {
            let tags: Vec<&str> = stat.tags.iter().map(String::as_str).collect();
            out.push_str(&format!(
                "{:#x},{},{},{},{},\"{}\"\n",
                vpn.index(),
                stat.reads,
                stat.writes,
                stat.invalidations,
                stat.nodes.len(),
                tags.join(";"),
            ));
        }
        out
    }

    /// Pages with heavy multi-node read/write conflict on a *single*
    /// object — true sharing that needs algorithmic staging rather than
    /// padding (§IV-C's global-flag pattern).
    pub fn contended_objects(&self) -> Vec<(Vpn, &PageStat)> {
        let mut pages: Vec<_> = self
            .pages
            .iter()
            .filter(|(_, s)| s.nodes.len() >= 2 && s.writes > 0 && s.tags.len() <= 1)
            .map(|(k, v)| (Vpn::new(*k), v))
            .collect();
        pages.sort_by_key(|(_, s)| std::cmp::Reverse(s.total()));
        pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_core::FaultEvent;
    use dex_os::VirtAddr;
    use dex_sim::SimTime;

    fn event(
        t: u64,
        node: u16,
        task: u64,
        kind: FaultKind,
        site: &'static str,
        addr: u64,
        tag: &str,
    ) -> FaultEvent {
        FaultEvent {
            time: SimTime::from_nanos(t),
            node: NodeId(node),
            task: Tid(task),
            kind,
            site,
            addr: VirtAddr::new(addr),
            tag: Some(tag.to_string()),
        }
    }

    #[test]
    fn empty_trace_profiles_cleanly() {
        let p = Profile::from_trace(&[]);
        assert_eq!(p.events(), 0);
        assert!(p.hot_pages().is_empty());
        assert!(p.hot_sites().is_empty());
        assert!(p.false_sharing_suspects().is_empty());
        assert!(p.timeline(SimDuration::from_millis(1)).is_empty());
    }

    #[test]
    fn hot_pages_rank_by_total_events() {
        let trace = vec![
            event(0, 1, 0, FaultKind::Write, "s", 0x1000, "a"),
            event(1, 1, 0, FaultKind::Write, "s", 0x2000, "b"),
            event(2, 1, 0, FaultKind::Read, "s", 0x2000, "b"),
            event(3, 2, 1, FaultKind::Invalidate, "s", 0x2000, "b"),
        ];
        let p = Profile::from_trace(&trace);
        let pages = p.hot_pages();
        assert_eq!(pages[0].0, Vpn::new(2));
        assert_eq!(pages[0].1.total(), 3);
        assert_eq!(pages[1].0, Vpn::new(1));
    }

    #[test]
    fn false_sharing_requires_two_tags_two_nodes_and_writes() {
        // Single tag: true sharing, not false sharing.
        let single = vec![
            event(0, 1, 0, FaultKind::Write, "s", 0x1000, "only"),
            event(1, 2, 1, FaultKind::Write, "s", 0x1008, "only"),
        ];
        let p = Profile::from_trace(&single);
        assert!(p.false_sharing_suspects().is_empty());
        assert_eq!(p.contended_objects().len(), 1);

        // Two tags, two nodes, writes: the signature.
        let double = vec![
            event(0, 1, 0, FaultKind::Write, "s", 0x1000, "a"),
            event(1, 2, 1, FaultKind::Write, "s", 0x1008, "b"),
        ];
        let p = Profile::from_trace(&double);
        let suspects = p.false_sharing_suspects();
        assert_eq!(suspects.len(), 1);
        assert_eq!(suspects[0].tags, vec!["a".to_string(), "b".to_string()]);

        // Two tags but one node: local sharing is harmless.
        let one_node = vec![
            event(0, 1, 0, FaultKind::Write, "s", 0x1000, "a"),
            event(1, 1, 1, FaultKind::Write, "s", 0x1008, "b"),
        ];
        assert!(Profile::from_trace(&one_node)
            .false_sharing_suspects()
            .is_empty());

        // Two tags, two nodes, reads only: replication handles it.
        let read_only = vec![
            event(0, 1, 0, FaultKind::Read, "s", 0x1000, "a"),
            event(1, 2, 1, FaultKind::Read, "s", 0x1008, "b"),
        ];
        assert!(Profile::from_trace(&read_only)
            .false_sharing_suspects()
            .is_empty());
    }

    #[test]
    fn sites_aggregate_reads_and_writes() {
        let trace = vec![
            event(0, 1, 0, FaultKind::Write, "kernel.update", 0x1000, "a"),
            event(1, 1, 0, FaultKind::Write, "kernel.update", 0x2000, "a"),
            event(2, 1, 0, FaultKind::Read, "kernel.scan", 0x3000, "b"),
        ];
        let p = Profile::from_trace(&trace);
        let sites = p.hot_sites();
        assert_eq!(sites[0].0, "kernel.update");
        assert_eq!(sites[0].1.writes, 2);
        assert_eq!(sites[0].1.pages.len(), 2);
        assert_eq!(sites[1].0, "kernel.scan");
        assert_eq!(sites[1].1.reads, 1);
    }

    #[test]
    fn timeline_buckets_events() {
        let trace = vec![
            event(100, 1, 0, FaultKind::Write, "s", 0x1000, "a"),
            event(900, 1, 0, FaultKind::Write, "s", 0x1000, "a"),
            event(2_500, 1, 0, FaultKind::Write, "s", 0x1000, "a"),
        ];
        let p = Profile::from_trace(&trace);
        let tl = p.timeline(SimDuration::from_nanos(1_000));
        assert_eq!(
            tl,
            vec![
                (SimDuration::from_nanos(0), 2),
                (SimDuration::from_nanos(1_000), 0),
                (SimDuration::from_nanos(2_000), 1),
            ]
        );
    }

    #[test]
    fn node_matrix_sums_per_node_traffic() {
        let trace = vec![
            event(0, 1, 0, FaultKind::Write, "s", 0x1000, "a"),
            event(1, 1, 0, FaultKind::Read, "s", 0x2000, "a"),
            event(2, 2, 1, FaultKind::Write, "s", 0x1000, "a"),
            event(3, 1, u64::MAX, FaultKind::Invalidate, "s", 0x1000, "a"),
        ];
        let p = Profile::from_trace(&trace);
        let matrix = p.node_matrix();
        assert_eq!(
            matrix,
            vec![
                (
                    NodeId(1),
                    NodeTraffic {
                        reads: 1,
                        writes: 1,
                        invalidations: 1
                    }
                ),
                (
                    NodeId(2),
                    NodeTraffic {
                        reads: 0,
                        writes: 1,
                        invalidations: 0
                    }
                ),
            ]
        );
    }

    #[test]
    fn csv_export_has_one_row_per_page() {
        let trace = vec![
            event(0, 1, 0, FaultKind::Write, "s", 0x1000, "a"),
            event(1, 2, 1, FaultKind::Read, "s", 0x2000, "b"),
        ];
        let csv = Profile::from_trace(&trace).to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3, "header + 2 pages: {csv}");
        assert_eq!(lines[0], "vpn,reads,writes,invalidations,nodes,tags");
        assert!(csv.contains("0x1,0,1,0,1,\"a\""));
        assert!(csv.contains("0x2,1,0,0,1,\"b\""));
    }

    #[test]
    fn per_task_counts_faulting_threads() {
        let trace = vec![
            event(0, 1, 7, FaultKind::Write, "s", 0x1000, "a"),
            event(1, 1, 7, FaultKind::Read, "s", 0x2000, "a"),
            event(2, 2, 9, FaultKind::Write, "s", 0x1000, "a"),
            // Invalidations are protocol activity, not thread activity.
            event(3, 2, u64::MAX, FaultKind::Invalidate, "s", 0x1000, "a"),
        ];
        let p = Profile::from_trace(&trace);
        assert_eq!(p.per_task(), vec![(Tid(7), 2), (Tid(9), 1)]);
    }
}
