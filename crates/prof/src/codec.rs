//! Text serialization of fault traces.
//!
//! The profiler and the verification tooling (`dex-check races`) share
//! one on-disk trace representation so a trace captured by an
//! application run can be analyzed offline by either tool. The format is
//! line-oriented, tab-separated, versioned by a header line:
//!
//! ```text
//! # dex-trace v1
//! <time_ns>\t<node>\t<task>\t<kind>\t<site>\t<addr_hex>\t<tag-or-->
//! ```
//!
//! Site strings are interned on decode (the live [`FaultEvent`] carries
//! `&'static str` sites); the interner leaks one allocation per distinct
//! site, which is bounded by the number of annotated code sites.
//!
//! Free-form fields (site, tag) are escaped reversibly: `\\`, `\t`, `\n`,
//! `\r` for the structural characters, `\-` for a literal `-` tag (so it
//! is not confused with the "no tag" sentinel), and `\e` for the empty
//! string (so a trailing empty field survives whitespace trimming).
//! Traces captured through a bounded [`TraceBuffer`] may have evicted
//! events; [`encode_trace_with_dropped`] records the eviction count as a
//! `# dropped N` line and [`decode_trace_with_dropped`] surfaces it.
//!
//! [`TraceBuffer`]: dex_core::TraceBuffer

use std::collections::HashMap;
use std::sync::Mutex;

use dex_core::{FaultEvent, FaultKind};
use dex_net::NodeId;
use dex_os::{Tid, VirtAddr};
use dex_sim::SimTime;

/// Magic header identifying the trace format.
pub const TRACE_HEADER: &str = "# dex-trace v1";

/// Escapes a free-form field so it survives the tab-separated,
/// line-oriented container losslessly.
pub fn escape_field(s: &str) -> String {
    if s.is_empty() {
        return "\\e".to_string();
    }
    if s == "-" {
        return "\\-".to_string();
    }
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

/// Reverses [`escape_field`]. Errors on truncated or unknown escapes.
pub fn unescape_field(s: &str) -> Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('-') => out.push('-'),
            Some('e') => {} // the empty-string sentinel expands to nothing
            Some(other) => return Err(format!("unknown escape `\\{other}`")),
            None => return Err("truncated escape at end of field".to_string()),
        }
    }
    Ok(out)
}

/// Serializes `events` into the versioned text format.
pub fn encode_trace(events: &[FaultEvent]) -> String {
    encode_trace_with_dropped(events, 0)
}

/// Like [`encode_trace`], additionally recording how many events were
/// evicted by a bounded capture buffer (see
/// [`TraceBuffer::dropped`](dex_core::TraceBuffer::dropped)) as a
/// `# dropped N` line so offline analysis knows the trace is partial.
pub fn encode_trace_with_dropped(events: &[FaultEvent], dropped: u64) -> String {
    let mut out = String::with_capacity(events.len() * 48 + TRACE_HEADER.len() + 1);
    out.push_str(TRACE_HEADER);
    out.push('\n');
    if dropped > 0 {
        out.push_str(&format!("# dropped {dropped}\n"));
    }
    for e in events {
        out.push_str(&format!(
            "{}\t{}\t{}\t{}\t{}\t{:#x}\t{}\n",
            e.time.as_nanos(),
            e.node.0,
            e.task.0,
            e.kind,
            escape_field(e.site),
            e.addr.as_u64(),
            match &e.tag {
                Some(tag) => escape_field(tag),
                None => "-".to_string(),
            }
        ));
    }
    out
}

/// Interns a site string, returning a `'static` reference.
///
/// Distinct sites are bounded by the number of `set_site` annotations in
/// the program, so the leak is bounded and shared process-wide.
pub fn intern_site(site: &str) -> &'static str {
    static INTERNED: Mutex<Option<HashMap<String, &'static str>>> = Mutex::new(None);
    let mut guard = INTERNED.lock().unwrap_or_else(|e| e.into_inner());
    let map = guard.get_or_insert_with(HashMap::new);
    if let Some(&s) = map.get(site) {
        return s;
    }
    let leaked: &'static str = Box::leak(site.to_string().into_boxed_str());
    map.insert(site.to_string(), leaked);
    leaked
}

/// Parses the text format produced by [`encode_trace`].
pub fn decode_trace(text: &str) -> Result<Vec<FaultEvent>, String> {
    decode_trace_with_dropped(text).map(|(events, _)| events)
}

/// Like [`decode_trace`], also returning the capture-time eviction count
/// recorded by [`encode_trace_with_dropped`] (0 when absent).
pub fn decode_trace_with_dropped(text: &str) -> Result<(Vec<FaultEvent>, u64), String> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, header)) if header.trim() == TRACE_HEADER => {}
        Some((_, header)) => {
            return Err(format!(
                "unrecognized trace header {header:?} (expected {TRACE_HEADER:?})"
            ))
        }
        None => return Err("empty trace file".to_string()),
    }
    let mut events = Vec::new();
    let mut dropped: u64 = 0;
    for (lineno, line) in lines {
        // Strip only the CR of CRLF endings: trailing spaces are field
        // content (the escaping keeps structural characters out).
        let line = line.trim_end_matches('\r');
        if line.is_empty() || line.starts_with('#') {
            if let Some(n) = line.strip_prefix("# dropped ") {
                dropped += n
                    .trim()
                    .parse::<u64>()
                    .map_err(|e| format!("line {}: bad dropped count: {e}", lineno + 1))?;
            }
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() != 7 {
            return Err(format!(
                "line {}: expected 7 tab-separated fields, got {}",
                lineno + 1,
                fields.len()
            ));
        }
        let parse_u64 = |s: &str, what: &str| -> Result<u64, String> {
            s.parse()
                .map_err(|e| format!("line {}: bad {what}: {e}", lineno + 1))
        };
        let time = SimTime::from_nanos(parse_u64(fields[0], "time")?);
        let node = NodeId(
            fields[1]
                .parse()
                .map_err(|e| format!("line {}: bad node: {e}", lineno + 1))?,
        );
        let task = Tid(parse_u64(fields[2], "task")?);
        let kind = match fields[3] {
            "read" => FaultKind::Read,
            "write" => FaultKind::Write,
            "invalidate" => FaultKind::Invalidate,
            other => return Err(format!("line {}: unknown kind {other:?}", lineno + 1)),
        };
        let site = intern_site(
            &unescape_field(fields[4]).map_err(|e| format!("line {}: site: {e}", lineno + 1))?,
        );
        let addr_str = fields[5]
            .strip_prefix("0x")
            .ok_or_else(|| format!("line {}: address must be hex (0x…)", lineno + 1))?;
        let addr = VirtAddr::new(
            u64::from_str_radix(addr_str, 16)
                .map_err(|e| format!("line {}: bad address: {e}", lineno + 1))?,
        );
        let tag = match fields[6] {
            "-" => None,
            tag => Some(unescape_field(tag).map_err(|e| format!("line {}: tag: {e}", lineno + 1))?),
        };
        events.push(FaultEvent {
            time,
            node,
            task,
            kind,
            site,
            addr,
            tag,
        });
    }
    Ok((events, dropped))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<FaultEvent> {
        vec![
            FaultEvent {
                time: SimTime::from_nanos(1_500),
                node: NodeId(2),
                task: Tid(7),
                kind: FaultKind::Write,
                site: "kmeans.update",
                addr: VirtAddr::new(0x1000_0040),
                tag: Some("centroids".into()),
            },
            FaultEvent {
                time: SimTime::from_nanos(2_000),
                node: NodeId(0),
                task: Tid(u64::MAX),
                kind: FaultKind::Invalidate,
                site: "(protocol)",
                addr: VirtAddr::new(0x1000_0000),
                tag: None,
            },
        ]
    }

    #[test]
    fn round_trip_preserves_all_fields() {
        let events = sample();
        let decoded = decode_trace(&encode_trace(&events)).unwrap();
        assert_eq!(decoded.len(), 2);
        for (a, b) in events.iter().zip(&decoded) {
            assert_eq!(a.time, b.time);
            assert_eq!(a.node, b.node);
            assert_eq!(a.task, b.task);
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.site, b.site);
            assert_eq!(a.addr, b.addr);
            assert_eq!(a.tag, b.tag);
        }
    }

    #[test]
    fn rejects_bad_header_and_malformed_lines() {
        assert!(decode_trace("").is_err());
        assert!(decode_trace("# not-a-trace\n").is_err());
        let bad = format!("{TRACE_HEADER}\n1\t2\t3\n");
        assert!(decode_trace(&bad).is_err(), "too few fields");
        let bad_kind = format!("{TRACE_HEADER}\n1\t0\t0\tzap\tsite\t0x10\t-\n");
        assert!(decode_trace(&bad_kind).is_err());
    }

    #[test]
    fn interning_returns_the_same_pointer() {
        let a = intern_site("same.site");
        let b = intern_site("same.site");
        assert!(std::ptr::eq(a, b));
    }

    #[test]
    fn hostile_site_and_tag_strings_round_trip() {
        let hostile = [
            "tab\there",
            "new\nline",
            "back\\slash",
            "cr\rlf",
            "-",
            "",
            "\\e literal",
            "mix\t\n\\-",
        ];
        for s in hostile {
            let events = vec![FaultEvent {
                time: SimTime::from_nanos(1),
                node: NodeId(0),
                task: Tid(0),
                kind: FaultKind::Read,
                site: intern_site(s),
                addr: VirtAddr::new(0x10),
                tag: Some(s.to_string()),
            }];
            let decoded = decode_trace(&encode_trace(&events)).unwrap();
            assert_eq!(decoded[0].site, s, "site {s:?} must survive the codec");
            assert_eq!(
                decoded[0].tag.as_deref(),
                Some(s),
                "tag {s:?} must survive the codec"
            );
        }
    }

    #[test]
    fn escaping_is_reversible_and_unambiguous() {
        assert_eq!(escape_field("-"), "\\-");
        assert_eq!(escape_field(""), "\\e");
        assert_eq!(unescape_field("\\e").unwrap(), "");
        assert_eq!(unescape_field("\\-").unwrap(), "-");
        assert!(unescape_field("bad\\q").is_err());
        assert!(unescape_field("trailing\\").is_err());
    }

    #[test]
    fn dropped_count_survives_the_codec() {
        let text = encode_trace_with_dropped(&sample(), 42);
        assert!(text.contains("# dropped 42"));
        let (events, dropped) = decode_trace_with_dropped(&text).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(dropped, 42);
        let (_, zero) = decode_trace_with_dropped(&encode_trace(&sample())).unwrap();
        assert_eq!(zero, 0);
    }
}
