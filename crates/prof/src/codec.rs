//! Text serialization of fault traces.
//!
//! The profiler and the verification tooling (`dex-check races`) share
//! one on-disk trace representation so a trace captured by an
//! application run can be analyzed offline by either tool. The format is
//! line-oriented, tab-separated, versioned by a header line:
//!
//! ```text
//! # dex-trace v1
//! <time_ns>\t<node>\t<task>\t<kind>\t<site>\t<addr_hex>\t<tag-or-->
//! ```
//!
//! Site strings are interned on decode (the live [`FaultEvent`] carries
//! `&'static str` sites); the interner leaks one allocation per distinct
//! site, which is bounded by the number of annotated code sites.

use std::collections::HashMap;
use std::sync::Mutex;

use dex_core::{FaultEvent, FaultKind};
use dex_net::NodeId;
use dex_os::{Tid, VirtAddr};
use dex_sim::SimTime;

/// Magic header identifying the trace format.
pub const TRACE_HEADER: &str = "# dex-trace v1";

/// Serializes `events` into the versioned text format.
pub fn encode_trace(events: &[FaultEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 48 + TRACE_HEADER.len() + 1);
    out.push_str(TRACE_HEADER);
    out.push('\n');
    for e in events {
        out.push_str(&format!(
            "{}\t{}\t{}\t{}\t{}\t{:#x}\t{}\n",
            e.time.as_nanos(),
            e.node.0,
            e.task.0,
            e.kind,
            e.site.replace(['\t', '\n'], " "),
            e.addr.as_u64(),
            match &e.tag {
                Some(tag) => tag.replace(['\t', '\n'], " "),
                None => "-".to_string(),
            }
        ));
    }
    out
}

/// Interns a site string, returning a `'static` reference.
///
/// Distinct sites are bounded by the number of `set_site` annotations in
/// the program, so the leak is bounded and shared process-wide.
pub fn intern_site(site: &str) -> &'static str {
    static INTERNED: Mutex<Option<HashMap<String, &'static str>>> = Mutex::new(None);
    let mut guard = INTERNED.lock().unwrap_or_else(|e| e.into_inner());
    let map = guard.get_or_insert_with(HashMap::new);
    if let Some(&s) = map.get(site) {
        return s;
    }
    let leaked: &'static str = Box::leak(site.to_string().into_boxed_str());
    map.insert(site.to_string(), leaked);
    leaked
}

/// Parses the text format produced by [`encode_trace`].
pub fn decode_trace(text: &str) -> Result<Vec<FaultEvent>, String> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, header)) if header.trim() == TRACE_HEADER => {}
        Some((_, header)) => {
            return Err(format!(
                "unrecognized trace header {header:?} (expected {TRACE_HEADER:?})"
            ))
        }
        None => return Err("empty trace file".to_string()),
    }
    let mut events = Vec::new();
    for (lineno, line) in lines {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() != 7 {
            return Err(format!(
                "line {}: expected 7 tab-separated fields, got {}",
                lineno + 1,
                fields.len()
            ));
        }
        let parse_u64 = |s: &str, what: &str| -> Result<u64, String> {
            s.parse()
                .map_err(|e| format!("line {}: bad {what}: {e}", lineno + 1))
        };
        let time = SimTime::from_nanos(parse_u64(fields[0], "time")?);
        let node = NodeId(
            fields[1]
                .parse()
                .map_err(|e| format!("line {}: bad node: {e}", lineno + 1))?,
        );
        let task = Tid(parse_u64(fields[2], "task")?);
        let kind = match fields[3] {
            "read" => FaultKind::Read,
            "write" => FaultKind::Write,
            "invalidate" => FaultKind::Invalidate,
            other => return Err(format!("line {}: unknown kind {other:?}", lineno + 1)),
        };
        let site = intern_site(fields[4]);
        let addr_str = fields[5]
            .strip_prefix("0x")
            .ok_or_else(|| format!("line {}: address must be hex (0x…)", lineno + 1))?;
        let addr = VirtAddr::new(
            u64::from_str_radix(addr_str, 16)
                .map_err(|e| format!("line {}: bad address: {e}", lineno + 1))?,
        );
        let tag = match fields[6] {
            "-" => None,
            tag => Some(tag.to_string()),
        };
        events.push(FaultEvent {
            time,
            node,
            task,
            kind,
            site,
            addr,
            tag,
        });
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<FaultEvent> {
        vec![
            FaultEvent {
                time: SimTime::from_nanos(1_500),
                node: NodeId(2),
                task: Tid(7),
                kind: FaultKind::Write,
                site: "kmeans.update",
                addr: VirtAddr::new(0x1000_0040),
                tag: Some("centroids".into()),
            },
            FaultEvent {
                time: SimTime::from_nanos(2_000),
                node: NodeId(0),
                task: Tid(u64::MAX),
                kind: FaultKind::Invalidate,
                site: "(protocol)",
                addr: VirtAddr::new(0x1000_0000),
                tag: None,
            },
        ]
    }

    #[test]
    fn round_trip_preserves_all_fields() {
        let events = sample();
        let decoded = decode_trace(&encode_trace(&events)).unwrap();
        assert_eq!(decoded.len(), 2);
        for (a, b) in events.iter().zip(&decoded) {
            assert_eq!(a.time, b.time);
            assert_eq!(a.node, b.node);
            assert_eq!(a.task, b.task);
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.site, b.site);
            assert_eq!(a.addr, b.addr);
            assert_eq!(a.tag, b.tag);
        }
    }

    #[test]
    fn rejects_bad_header_and_malformed_lines() {
        assert!(decode_trace("").is_err());
        assert!(decode_trace("# not-a-trace\n").is_err());
        let bad = format!("{TRACE_HEADER}\n1\t2\t3\n");
        assert!(decode_trace(&bad).is_err(), "too few fields");
        let bad_kind = format!("{TRACE_HEADER}\n1\t0\t0\tzap\tsite\t0x10\t-\n");
        assert!(decode_trace(&bad_kind).is_err());
    }

    #[test]
    fn interning_returns_the_same_pointer() {
        let a = intern_site("same.site");
        let b = intern_site("same.site");
        assert!(std::ptr::eq(a, b));
    }
}
