//! # dex-net — simulated InfiniBand messaging layer
//!
//! DEX exchanges protocol messages and page data over a custom messaging
//! system built on InfiniBand VERB and RDMA (§III-E of the paper). This
//! crate reproduces that layer structurally against the `dex-sim`
//! discrete-event kernel:
//!
//! * [`Fabric`] / [`Endpoint`] — per-node-pair Reliable Connections with
//!   FIFO links at a configurable bandwidth and latency.
//! * [`TimedPool`] / [`CreditPool`] — the DMA-ready send/receive buffer
//!   pools and RDMA sink chunks that let the per-message path avoid DMA
//!   mapping and memory-region registration.
//! * [`NetConfig`] / [`RdmaStrategy`] — the calibrated cost model, plus
//!   the alternative page-transfer strategies (per-page registration,
//!   VERB-only) used by the ablation benchmarks.
//!
//! # Examples
//!
//! ```
//! use dex_net::{Fabric, NetConfig, NodeId, WireMessage};
//! use dex_sim::Engine;
//!
//! struct Req { payload: Vec<u8> }
//! impl WireMessage for Req {
//!     fn control_bytes(&self) -> usize { self.payload.len() }
//! }
//!
//! let engine = Engine::new();
//! let fabric = Fabric::<Req>::new(NetConfig::default(), 2);
//! let (tx, rx) = (fabric.endpoint(NodeId(0)), fabric.endpoint(NodeId(1)));
//! engine.spawn("client", move |ctx| {
//!     tx.send(ctx, NodeId(1), Req { payload: vec![1, 2, 3] });
//! });
//! engine.spawn("server", move |ctx| {
//!     let d = rx.recv(ctx).expect("open");
//!     assert_eq!(d.msg.payload, vec![1, 2, 3]);
//! });
//! engine.run().unwrap();
//! ```

#![warn(missing_docs)]

mod config;
mod fabric;
mod metrics;
mod pool;
mod series;

pub use config::{NetConfig, RdmaStrategy, NET_COMPONENTS};
pub use fabric::{Delivery, Endpoint, Fabric, NodeId, SpanContext, WireMessage, HEADER_BYTES};
pub use metrics::{
    HistogramStats, HistogramSummary, LinkMetrics, MetricsRegistry, MetricsSnapshot,
    DEFAULT_HIST_CAP,
};
pub use pool::{ChunkGrant, CreditPool, TimedPool};
pub use series::{CounterPoint, HistPoint, SeriesBuilder, SeriesScope, TimeSeries, WindowPoints};
