//! DMA-ready buffer pools.
//!
//! DMA-mapping a buffer per message is expensive, so DEX pre-maps pools of
//! physically-contiguous chunks at connection setup and recycles them
//! (§III-E). Two pool flavors model the two recycling disciplines:
//!
//! * [`TimedPool`] — send buffers: a chunk is busy from allocation until
//!   the HCA signals send completion, a time known when the message is
//!   posted. Allocation blocks (in virtual time) while every chunk is
//!   busy.
//! * [`CreditPool`] — receive work requests and RDMA sink chunks: a chunk
//!   is busy until the *consumer* explicitly recycles it (reposts the
//!   receive work request / drains the sink), which is not known in
//!   advance.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

use dex_sim::{SimCtx, SimTime, ThreadId};

/// A pool of chunks that become free at known times (send buffer pool).
///
/// # Examples
///
/// ```
/// use dex_net::TimedPool;
/// use dex_sim::{Engine, SimDuration, SimTime};
///
/// let engine = Engine::new();
/// let pool = TimedPool::new(1);
/// engine.spawn("sender", move |ctx| {
///     // First allocation is immediate; the chunk is busy for 10 us.
///     pool.acquire_until(ctx, ctx.now() + SimDuration::from_micros(10));
///     // Second allocation must wait for the chunk to free.
///     pool.acquire_until(ctx, ctx.now() + SimDuration::from_micros(1));
///     assert_eq!(ctx.now().as_nanos(), 10_000);
/// });
/// engine.run().unwrap();
/// ```
#[derive(Clone)]
pub struct TimedPool {
    chunks: Arc<Mutex<Vec<SimTime>>>,
}

/// A chunk handed out by [`TimedPool::acquire`], pending its release time.
#[derive(Debug)]
#[must_use = "a granted chunk stays busy forever unless hold() sets its release time"]
pub struct ChunkGrant {
    index: usize,
}

impl TimedPool {
    /// Creates a pool of `chunks` chunks, all free.
    ///
    /// # Panics
    ///
    /// Panics if `chunks` is zero.
    pub fn new(chunks: usize) -> Self {
        assert!(chunks > 0, "buffer pool must have at least one chunk");
        TimedPool {
            chunks: Arc::new(Mutex::new(vec![SimTime::ZERO; chunks])),
        }
    }

    /// Allocates the earliest-free chunk, blocking in virtual time until
    /// one frees; the chunk then stays busy until `busy_until`.
    pub fn acquire_until(&self, ctx: &SimCtx, busy_until: SimTime) {
        let grant = self.acquire(ctx);
        self.hold(grant, busy_until);
    }

    /// Allocates the earliest-free chunk (blocking in virtual time) and
    /// returns a grant; the chunk is busy until [`TimedPool::hold`] sets
    /// its release time.
    pub fn acquire(&self, ctx: &SimCtx) -> ChunkGrant {
        let (index, wait_until) = {
            let mut chunks = self.chunks.lock();
            let (index, slot) = chunks
                .iter_mut()
                .enumerate()
                .min_by_key(|(_, t)| **t)
                .expect("pool is non-empty");
            let grant = (*slot).max(ctx.now());
            *slot = SimTime::MAX; // in use until hold() is called
            (index, grant)
        };
        ctx.sleep_until(wait_until);
        ChunkGrant { index }
    }

    /// Marks the granted chunk free again at `busy_until`.
    pub fn hold(&self, grant: ChunkGrant, busy_until: SimTime) {
        self.chunks.lock()[grant.index] = busy_until;
    }

    /// Number of chunks free at `now`.
    pub fn free_at(&self, now: SimTime) -> usize {
        self.chunks.lock().iter().filter(|t| **t <= now).count()
    }
}

impl std::fmt::Debug for TimedPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimedPool")
            .field("chunks", &self.chunks.lock().len())
            .finish()
    }
}

/// A pool of chunks recycled by explicit release (receive pool, RDMA
/// sink).
///
/// # Examples
///
/// ```
/// use dex_net::CreditPool;
/// use dex_sim::{Engine, SimDuration};
///
/// let engine = Engine::new();
/// let pool = CreditPool::new(2);
/// let consumer_pool = pool.clone();
/// engine.spawn("producer", move |ctx| {
///     pool.acquire(ctx);
///     pool.acquire(ctx);
///     pool.acquire(ctx); // blocks until the consumer releases
///     assert_eq!(ctx.now().as_nanos(), 5_000);
/// });
/// engine.spawn("consumer", move |ctx| {
///     ctx.advance(SimDuration::from_micros(5));
///     consumer_pool.release(ctx);
/// });
/// engine.run().unwrap();
/// ```
#[derive(Clone)]
pub struct CreditPool {
    inner: Arc<Mutex<CreditInner>>,
}

struct CreditInner {
    free: usize,
    capacity: usize,
    waiters: VecDeque<ThreadId>,
    /// Chunks handed directly to a popped waiter by `release` but not yet
    /// picked up. Handed-off chunks never touch `free`, so a newcomer
    /// cannot barge in and steal them before the woken thread runs.
    handoffs: Vec<ThreadId>,
}

impl CreditPool {
    /// Creates a pool with `chunks` free chunks.
    ///
    /// # Panics
    ///
    /// Panics if `chunks` is zero.
    pub fn new(chunks: usize) -> Self {
        assert!(chunks > 0, "credit pool must have at least one chunk");
        CreditPool {
            inner: Arc::new(Mutex::new(CreditInner {
                free: chunks,
                capacity: chunks,
                waiters: VecDeque::new(),
                handoffs: Vec::new(),
            })),
        }
    }

    /// Takes one chunk, parking in virtual time while none are free.
    /// Waiters are served strictly FIFO: `release` hands the chunk directly
    /// to the longest waiter, so later acquirers cannot overtake it.
    pub fn acquire(&self, ctx: &SimCtx) {
        let me = ctx.id();
        let mut queued = false;
        loop {
            {
                let mut inner = self.inner.lock();
                if queued {
                    if let Some(pos) = inner.handoffs.iter().position(|w| *w == me) {
                        inner.handoffs.swap_remove(pos);
                        return;
                    }
                } else {
                    if inner.free > 0 {
                        inner.free -= 1;
                        return;
                    }
                    inner.waiters.push_back(me);
                    queued = true;
                }
            }
            ctx.park();
        }
    }

    /// Takes one chunk without blocking; `false` if none free.
    pub fn try_acquire(&self) -> bool {
        let mut inner = self.inner.lock();
        if inner.free > 0 {
            inner.free -= 1;
            true
        } else {
            false
        }
    }

    /// Returns one chunk. If anyone is waiting, the chunk is handed
    /// directly to the longest-waiting acquirer (never through `free`, so
    /// a concurrent newcomer cannot steal it before the waiter runs);
    /// otherwise it goes back to the free count.
    ///
    /// # Panics
    ///
    /// Panics if released more times than acquired.
    pub fn release(&self, ctx: &SimCtx) {
        let waiter = {
            let mut inner = self.inner.lock();
            assert!(
                inner.free + inner.handoffs.len() < inner.capacity,
                "credit pool released more chunks than it holds"
            );
            match inner.waiters.pop_front() {
                Some(w) => {
                    inner.handoffs.push(w);
                    Some(w)
                }
                None => {
                    inner.free += 1;
                    None
                }
            }
        };
        if let Some(w) = waiter {
            ctx.unpark(w);
        }
    }

    /// Currently-free chunks.
    pub fn free(&self) -> usize {
        self.inner.lock().free
    }
}

impl std::fmt::Debug for CreditPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("CreditPool")
            .field("free", &inner.free)
            .field("capacity", &inner.capacity)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_sim::{Engine, SimDuration};

    #[test]
    fn timed_pool_grants_immediately_when_free() {
        let engine = Engine::new();
        let pool = TimedPool::new(4);
        engine.spawn("t", move |ctx| {
            for _ in 0..4 {
                pool.acquire_until(ctx, ctx.now() + SimDuration::from_micros(100));
            }
            assert_eq!(ctx.now(), SimTime::ZERO, "4 chunks, 4 grants, no wait");
        });
        engine.run().unwrap();
    }

    #[test]
    fn timed_pool_blocks_when_exhausted() {
        let engine = Engine::new();
        let pool = TimedPool::new(2);
        engine.spawn("t", move |ctx| {
            pool.acquire_until(ctx, SimTime::from_nanos(5_000));
            pool.acquire_until(ctx, SimTime::from_nanos(9_000));
            pool.acquire_until(ctx, SimTime::from_nanos(20_000));
            assert_eq!(ctx.now().as_nanos(), 5_000, "waits for earliest free");
        });
        engine.run().unwrap();
    }

    #[test]
    fn timed_pool_free_count() {
        let engine = Engine::new();
        let pool = TimedPool::new(3);
        engine.spawn("t", move |ctx| {
            pool.acquire_until(ctx, SimTime::from_nanos(100));
            assert_eq!(pool.free_at(ctx.now()), 2);
            assert_eq!(pool.free_at(SimTime::from_nanos(101)), 3);
        });
        engine.run().unwrap();
    }

    #[test]
    fn credit_pool_blocks_and_wakes_fifo() {
        let engine = Engine::new();
        let pool = CreditPool::new(1);
        let order = Arc::new(Mutex::new(Vec::new()));
        for i in 0..3 {
            let pool = pool.clone();
            let order = Arc::clone(&order);
            engine.spawn(format!("acquirer-{i}"), move |ctx| {
                pool.acquire(ctx);
                order.lock().push(i);
                ctx.advance(SimDuration::from_micros(10));
                pool.release(ctx);
            });
        }
        engine.run().unwrap();
        assert_eq!(*order.lock(), vec![0, 1, 2]);
    }

    #[test]
    fn release_hands_credit_to_waiter_before_newcomers() {
        // Regression: `release` used to return the credit to `free` and
        // merely wake the longest waiter, so a newcomer running before the
        // woken thread could steal the credit and re-park it indefinitely.
        let engine = Engine::new();
        let pool = CreditPool::new(1);
        let order = Arc::new(Mutex::new(Vec::new()));
        {
            let pool = pool.clone();
            engine.spawn("holder", move |ctx| {
                pool.acquire(ctx);
                ctx.advance(SimDuration::from_micros(10));
                pool.release(ctx);
            });
        }
        {
            let pool = pool.clone();
            let order = Arc::clone(&order);
            engine.spawn("waiter", move |ctx| {
                pool.acquire(ctx); // parks at t=0 behind the holder
                order.lock().push("waiter");
                pool.release(ctx);
            });
        }
        {
            let pool = pool.clone();
            let order = Arc::clone(&order);
            engine.spawn("barger", move |ctx| {
                ctx.advance(SimDuration::from_micros(10));
                // Runs after the holder's release but before the woken
                // waiter: the credit is in handoff, not stealable.
                assert!(!pool.try_acquire(), "barger must not steal the handoff");
                pool.acquire(ctx);
                order.lock().push("barger");
                pool.release(ctx);
            });
        }
        engine.run().unwrap();
        assert_eq!(*order.lock(), vec!["waiter", "barger"]);
    }

    #[test]
    fn try_acquire_never_blocks() {
        let engine = Engine::new();
        let pool = CreditPool::new(1);
        engine.spawn("t", move |ctx| {
            assert!(pool.try_acquire());
            assert!(!pool.try_acquire());
            pool.release(ctx);
            assert!(pool.try_acquire());
        });
        engine.run().unwrap();
    }

    #[test]
    #[should_panic(expected = "more chunks")]
    fn over_release_panics() {
        let engine = Engine::new();
        let pool = CreditPool::new(1);
        engine.spawn("t", move |ctx| {
            pool.release(ctx);
        });
        let _ = engine.run();
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_chunk_pool_rejected() {
        let _ = TimedPool::new(0);
    }
}
