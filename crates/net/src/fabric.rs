//! The simulated InfiniBand fabric.
//!
//! At boot, nodes establish one Reliable Connection per node pair
//! (§III-E). Each connection owns a send buffer pool, a receive buffer
//! pool, and an RDMA sink, all pre-mapped for DMA so the per-message path
//! avoids DMA mapping and memory-region registration. Small control
//! messages travel over VERB send/recv; page-sized payloads use the
//! configured [`RdmaStrategy`](crate::RdmaStrategy).
//!
//! The cost model is explicit: compose-copy at the sender, FIFO
//! serialization on the per-pair link at the configured bandwidth,
//! propagation latency, and (for the sink strategy) one drain-copy at the
//! receiver.

use std::sync::Arc;

use dex_sim::{Counters, Resource, SimChannel, SimCtx, SimTime};

use crate::config::{NetConfig, RdmaStrategy};
use crate::pool::{CreditPool, TimedPool};

/// Identifies a node in the cluster.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct NodeId(pub u16);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node-{}", self.0)
    }
}

impl From<u16> for NodeId {
    fn from(v: u16) -> Self {
        NodeId(v)
    }
}

impl From<usize> for NodeId {
    fn from(v: usize) -> Self {
        NodeId(u16::try_from(v).expect("node index fits in u16"))
    }
}

impl From<i32> for NodeId {
    fn from(v: i32) -> Self {
        NodeId(u16::try_from(v).expect("node index fits in u16"))
    }
}

/// Sizing information the fabric needs from a message type.
///
/// Control messages report their payload via [`WireMessage::control_bytes`]
/// (a fixed header is added); messages carrying page data additionally
/// report [`WireMessage::page_bytes`], which selects the RDMA path.
pub trait WireMessage: Send + 'static {
    /// Bytes of control payload (excluding the fixed header).
    fn control_bytes(&self) -> usize;

    /// Bytes of bulk page payload carried (0 for pure control messages).
    fn page_bytes(&self) -> usize {
        0
    }
}

/// Fixed per-message header bytes (message kind, pid, addresses).
pub const HEADER_BYTES: usize = 48;

/// A received message with its sender.
#[derive(Debug)]
pub struct Delivery<M> {
    /// The sending node.
    pub src: NodeId,
    /// The message.
    pub msg: M,
}

struct Envelope<M> {
    src: NodeId,
    msg: M,
    deliver_at: SimTime,
    /// Receiver-side drain copy (sink strategy / verb-only pages).
    recv_copy_bytes: usize,
    /// Receive work request to recycle after processing.
    recv_credit: CreditPool,
    /// Sink chunk to recycle after the drain copy (sink strategy only).
    sink_credit: Option<CreditPool>,
}

struct Link {
    wire: Resource,
    send_pool: TimedPool,
    recv_pool: CreditPool,
    sink: CreditPool,
    bytes: std::sync::atomic::AtomicU64,
    messages: std::sync::atomic::AtomicU64,
}

/// The cluster-wide fabric: per-pair RC connections plus per-node inboxes.
///
/// Handlers on each node receive messages through an [`Endpoint`]; any
/// simulated thread can send through one. The fabric is cheap to share
/// (`Arc` internally).
///
/// # Examples
///
/// ```
/// use dex_net::{Fabric, NetConfig, NodeId, WireMessage};
/// use dex_sim::Engine;
///
/// struct Ping(u32);
/// impl WireMessage for Ping {
///     fn control_bytes(&self) -> usize { 4 }
/// }
///
/// let engine = Engine::new();
/// let fabric = Fabric::<Ping>::new(NetConfig::default(), 2);
/// let a = fabric.endpoint(NodeId(0));
/// let b = fabric.endpoint(NodeId(1));
/// engine.spawn("sender", move |ctx| {
///     a.send(ctx, NodeId(1), Ping(7));
/// });
/// engine.spawn("receiver", move |ctx| {
///     let d = b.recv(ctx).expect("fabric open");
///     assert_eq!(d.src, NodeId(0));
///     assert_eq!(d.msg.0, 7);
///     assert!(ctx.now().as_nanos() >= 1_500, "propagation delay applies");
/// });
/// engine.run().unwrap();
/// ```
pub struct Fabric<M> {
    config: NetConfig,
    nodes: usize,
    links: Vec<Link>,
    inboxes: Vec<SimChannel<Envelope<M>>>,
    counters: Counters,
}

impl<M: WireMessage> Fabric<M> {
    /// Builds the fabric for `nodes` nodes: one RC connection per ordered
    /// pair, with pools sized from `config`.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn new(config: NetConfig, nodes: usize) -> Arc<Self> {
        assert!(nodes > 0, "fabric needs at least one node");
        let mut links = Vec::with_capacity(nodes * nodes);
        for _ in 0..nodes * nodes {
            links.push(Link {
                wire: Resource::with_rate_bytes_per_sec(config.bandwidth_bytes_per_sec),
                send_pool: TimedPool::new(config.send_pool_chunks),
                recv_pool: CreditPool::new(config.recv_pool_chunks),
                sink: CreditPool::new(config.rdma_sink_chunks),
                bytes: std::sync::atomic::AtomicU64::new(0),
                messages: std::sync::atomic::AtomicU64::new(0),
            });
        }
        let counters = Counters::new();
        // Account one-time setup work: every chunk of every pool is
        // DMA-mapped at boot; every sink chunk is registered as an RDMA MR.
        let pairs = (nodes * nodes.saturating_sub(1)) as u64;
        counters.add(
            "setup.dma_mappings",
            pairs * (config.send_pool_chunks + config.recv_pool_chunks) as u64,
        );
        counters.add(
            "setup.mr_registrations",
            pairs * config.rdma_sink_chunks as u64,
        );
        Arc::new(Fabric {
            config,
            nodes,
            links,
            inboxes: (0..nodes).map(|_| SimChannel::unbounded()).collect(),
            counters,
        })
    }

    /// Number of nodes in the fabric.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The cost-model configuration.
    pub fn config(&self) -> &NetConfig {
        &self.config
    }

    /// Traffic counters (`msgs.sent`, `bytes.sent`, `pages.sent`, ...).
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// The endpoint of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the fabric.
    pub fn endpoint(self: &Arc<Self>, node: NodeId) -> Endpoint<M> {
        assert!(
            (node.0 as usize) < self.nodes,
            "node {node} outside fabric of {} nodes",
            self.nodes
        );
        Endpoint {
            node,
            fabric: Arc::clone(self),
        }
    }

    fn link(&self, src: NodeId, dst: NodeId) -> &Link {
        &self.links[src.0 as usize * self.nodes + dst.0 as usize]
    }

    /// Per-directed-link traffic so far: `(messages, bytes)` sent from
    /// `src` to `dst` — the node-to-node traffic matrix analysts plot.
    pub fn link_traffic(&self, src: NodeId, dst: NodeId) -> (u64, u64) {
        let link = self.link(src, dst);
        (
            link.messages.load(std::sync::atomic::Ordering::Relaxed),
            link.bytes.load(std::sync::atomic::Ordering::Relaxed),
        )
    }

    /// The full traffic matrix, indexed `[src][dst]`, as `(messages,
    /// bytes)` tuples.
    pub fn traffic_matrix(&self) -> Vec<Vec<(u64, u64)>> {
        (0..self.nodes as u16)
            .map(|s| {
                (0..self.nodes as u16)
                    .map(|d| self.link_traffic(NodeId(s), NodeId(d)))
                    .collect()
            })
            .collect()
    }
}

impl<M> std::fmt::Debug for Fabric<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fabric")
            .field("nodes", &self.nodes)
            .field("counters", &self.counters)
            .finish()
    }
}

/// One node's attachment to the fabric: send to any peer, receive from
/// the node's inbox.
pub struct Endpoint<M> {
    node: NodeId,
    fabric: Arc<Fabric<M>>,
}

impl<M> Clone for Endpoint<M> {
    fn clone(&self) -> Self {
        Endpoint {
            node: self.node,
            fabric: Arc::clone(&self.fabric),
        }
    }
}

impl<M: WireMessage> Endpoint<M> {
    /// The node this endpoint belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The owning fabric.
    pub fn fabric(&self) -> &Arc<Fabric<M>> {
        &self.fabric
    }

    /// Sends `msg` to `dst`. Control messages go over VERB send/recv using
    /// the connection's send buffer pool; messages carrying page payload
    /// use the configured RDMA strategy. Posting is asynchronous: the
    /// caller pays compose/registration costs and any pool backpressure,
    /// not the full wire time.
    ///
    /// # Panics
    ///
    /// Panics if `dst` equals this endpoint's node (loopback messages
    /// indicate a protocol bug) or lies outside the fabric.
    pub fn send(&self, ctx: &SimCtx, dst: NodeId, msg: M) {
        assert_ne!(self.node, dst, "loopback send on the fabric");
        let fabric = &self.fabric;
        let cfg = &fabric.config;
        let link = fabric.link(self.node, dst);
        let control = HEADER_BYTES + msg.control_bytes();
        let page = msg.page_bytes();

        fabric.counters.incr("msgs.sent");
        fabric.counters.add("bytes.sent", (control + page) as u64);
        link.messages
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        link.bytes.fetch_add(
            (control + page) as u64,
            std::sync::atomic::Ordering::Relaxed,
        );

        let (wire_bytes, extra_latency, recv_copy_bytes, sink_credit) = if page == 0 {
            // VERB control path: compose into a pre-mapped pool chunk.
            (control, cfg.verb_latency, 0, None)
        } else {
            fabric.counters.incr("pages.sent");
            match cfg.rdma_strategy {
                RdmaStrategy::SinkCopy => {
                    // Wait for a sink chunk at the receiver, then RDMA-write
                    // into it; the receiver drains it with one memcpy.
                    link.sink.acquire(ctx);
                    (
                        control + page,
                        cfg.verb_latency + cfg.rdma_extra_latency,
                        page,
                        Some(link.sink.clone()),
                    )
                }
                RdmaStrategy::PerPageRegistration => {
                    // Register the final destination as an MR every time.
                    fabric.counters.incr("mr.registrations");
                    ctx.advance(cfg.mr_register_cost);
                    (
                        control + page,
                        cfg.verb_latency + cfg.rdma_extra_latency,
                        0,
                        None,
                    )
                }
                RdmaStrategy::VerbOnly => {
                    // Page travels like a big control message: copied into
                    // the send pool here, copied out at the receiver.
                    ctx.advance(cfg.memcpy_time(page));
                    (control + page, cfg.verb_latency, page, None)
                }
            }
        };

        let grant = link.send_pool.acquire(ctx);
        ctx.advance(cfg.memcpy_time(control));
        let finish = link.wire.reserve_bytes(ctx.now(), wire_bytes as u64);
        link.send_pool.hold(grant, finish);
        let deliver_at = finish + extra_latency;
        link.recv_pool.acquire(ctx);
        fabric.inboxes[dst.0 as usize]
            .send(
                ctx,
                Envelope {
                    src: self.node,
                    msg,
                    deliver_at,
                    recv_copy_bytes,
                    recv_credit: link.recv_pool.clone(),
                    sink_credit,
                },
            )
            .expect("fabric inbox never closes");
    }

    /// Receives the next message addressed to this node, advancing virtual
    /// time to its arrival and paying receiver-side costs (sink drain
    /// copy). Returns `None` if the fabric shuts down.
    pub fn recv(&self, ctx: &SimCtx) -> Option<Delivery<M>> {
        let env = self.fabric.inboxes[self.node.0 as usize].recv(ctx)?;
        ctx.sleep_until(env.deliver_at);
        if env.recv_copy_bytes > 0 {
            ctx.advance(self.fabric.config.memcpy_time(env.recv_copy_bytes));
        }
        if let Some(sink) = env.sink_credit {
            sink.release(ctx);
        }
        // Repost the receive work request.
        env.recv_credit.release(ctx);
        self.fabric.counters.incr("msgs.received");
        Some(Delivery {
            src: env.src,
            msg: env.msg,
        })
    }

    /// Receives without blocking; `None` if no message is pending. Still
    /// advances to the message's arrival time when one is returned.
    pub fn try_recv(&self, ctx: &SimCtx) -> Option<Delivery<M>> {
        let env = self.fabric.inboxes[self.node.0 as usize].try_recv(ctx)?;
        ctx.sleep_until(env.deliver_at);
        if env.recv_copy_bytes > 0 {
            ctx.advance(self.fabric.config.memcpy_time(env.recv_copy_bytes));
        }
        if let Some(sink) = env.sink_credit {
            sink.release(ctx);
        }
        env.recv_credit.release(ctx);
        self.fabric.counters.incr("msgs.received");
        Some(Delivery {
            src: env.src,
            msg: env.msg,
        })
    }
}

impl<M> std::fmt::Debug for Endpoint<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Endpoint")
            .field("node", &self.node)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_sim::{Engine, SimDuration};
    use parking_lot::Mutex;

    struct TestMsg {
        tag: u64,
        page: usize,
    }

    impl WireMessage for TestMsg {
        fn control_bytes(&self) -> usize {
            16
        }
        fn page_bytes(&self) -> usize {
            self.page
        }
    }

    fn fabric_with(strategy: RdmaStrategy, nodes: usize) -> Arc<Fabric<TestMsg>> {
        let cfg = NetConfig {
            rdma_strategy: strategy,
            ..NetConfig::default()
        };
        Fabric::new(cfg, nodes)
    }

    #[test]
    fn control_message_arrives_after_latency() {
        let engine = Engine::new();
        let fabric = fabric_with(RdmaStrategy::SinkCopy, 2);
        let tx = fabric.endpoint(NodeId(0));
        let rx = fabric.endpoint(NodeId(1));
        engine.spawn("tx", move |ctx| {
            tx.send(ctx, NodeId(1), TestMsg { tag: 1, page: 0 })
        });
        engine.spawn("rx", move |ctx| {
            let d = rx.recv(ctx).unwrap();
            assert_eq!(d.msg.tag, 1);
            // compose copy + wire + the configured verb latency.
            let latency = NetConfig::default().verb_latency.as_nanos();
            assert!(ctx.now().as_nanos() >= latency);
            assert!(ctx.now().as_nanos() < latency + 2_000, "at {}", ctx.now());
        });
        engine.run().unwrap();
    }

    #[test]
    fn messages_between_same_pair_stay_ordered() {
        let engine = Engine::new();
        let fabric = fabric_with(RdmaStrategy::SinkCopy, 2);
        let tx = fabric.endpoint(NodeId(0));
        let rx = fabric.endpoint(NodeId(1));
        engine.spawn("tx", move |ctx| {
            for tag in 0..20 {
                tx.send(ctx, NodeId(1), TestMsg { tag, page: 0 });
            }
        });
        let got = Arc::new(Mutex::new(Vec::new()));
        {
            let got = Arc::clone(&got);
            engine.spawn("rx", move |ctx| {
                for _ in 0..20 {
                    got.lock().push(rx.recv(ctx).unwrap().msg.tag);
                }
            });
        }
        engine.run().unwrap();
        assert_eq!(*got.lock(), (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn page_transfer_is_slower_than_control() {
        fn one_way(page: usize) -> u64 {
            let engine = Engine::new();
            let fabric = fabric_with(RdmaStrategy::SinkCopy, 2);
            let tx = fabric.endpoint(NodeId(0));
            let rx = fabric.endpoint(NodeId(1));
            engine.spawn("tx", move |ctx| {
                tx.send(ctx, NodeId(1), TestMsg { tag: 0, page });
            });
            engine.spawn("rx", move |ctx| {
                rx.recv(ctx).unwrap();
            });
            engine.run().unwrap().as_nanos()
        }
        let control = one_way(0);
        let page = one_way(4096);
        assert!(page > control, "page {page}ns vs control {control}ns");
    }

    #[test]
    fn per_page_registration_charges_sender() {
        let engine = Engine::new();
        let fabric = fabric_with(RdmaStrategy::PerPageRegistration, 2);
        let tx = fabric.endpoint(NodeId(0));
        let rx = fabric.endpoint(NodeId(1));
        engine.spawn("tx", move |ctx| {
            let before = ctx.now();
            tx.send(ctx, NodeId(1), TestMsg { tag: 0, page: 4096 });
            let spent = ctx.now() - before;
            assert!(
                spent >= SimDuration::from_micros(5),
                "registration cost paid at the sender: {spent}"
            );
        });
        engine.spawn_daemon("rx", move |ctx| while rx.recv(ctx).is_some() {});
        engine.run().unwrap();
        assert_eq!(fabric.counters().get("mr.registrations"), 1);
    }

    #[test]
    fn sink_backpressure_blocks_page_floods() {
        let engine = Engine::new();
        let cfg = NetConfig {
            rdma_sink_chunks: 2,
            ..NetConfig::default()
        };
        let fabric = Fabric::<TestMsg>::new(cfg, 2);
        let tx = fabric.endpoint(NodeId(0));
        let rx = fabric.endpoint(NodeId(1));
        let sent_at = Arc::new(Mutex::new(Vec::new()));
        {
            let sent_at = Arc::clone(&sent_at);
            engine.spawn("tx", move |ctx| {
                for tag in 0..4 {
                    tx.send(ctx, NodeId(1), TestMsg { tag, page: 4096 });
                    sent_at.lock().push(ctx.now().as_nanos());
                }
            });
        }
        engine.spawn("rx", move |ctx| {
            for _ in 0..4 {
                ctx.advance(SimDuration::from_micros(50)); // slow consumer
                rx.recv(ctx).unwrap();
            }
        });
        engine.run().unwrap();
        let at = sent_at.lock().clone();
        assert!(at[1] < 50_000, "two sink credits available: {at:?}");
        assert!(at[2] >= 50_000, "third page waits for a drain: {at:?}");
    }

    #[test]
    fn counters_track_traffic() {
        let engine = Engine::new();
        let fabric = fabric_with(RdmaStrategy::SinkCopy, 3);
        let a = fabric.endpoint(NodeId(0));
        let b = fabric.endpoint(NodeId(1));
        let c = fabric.endpoint(NodeId(2));
        engine.spawn("a", move |ctx| {
            a.send(ctx, NodeId(1), TestMsg { tag: 0, page: 0 });
            a.send(ctx, NodeId(2), TestMsg { tag: 1, page: 4096 });
        });
        engine.spawn_daemon("b", move |ctx| while b.recv(ctx).is_some() {});
        engine.spawn_daemon("c", move |ctx| while c.recv(ctx).is_some() {});
        engine.run().unwrap();
        assert_eq!(fabric.counters().get("msgs.sent"), 2);
        assert_eq!(fabric.counters().get("msgs.received"), 2);
        assert_eq!(fabric.counters().get("pages.sent"), 1);
        assert!(fabric.counters().get("bytes.sent") > 4096);
    }

    #[test]
    fn link_traffic_matrix_tracks_directed_flows() {
        let engine = Engine::new();
        let fabric = fabric_with(RdmaStrategy::SinkCopy, 3);
        let a = fabric.endpoint(NodeId(0));
        let b = fabric.endpoint(NodeId(1));
        let c = fabric.endpoint(NodeId(2));
        engine.spawn("a", move |ctx| {
            a.send(ctx, NodeId(1), TestMsg { tag: 0, page: 0 });
            a.send(ctx, NodeId(1), TestMsg { tag: 1, page: 4096 });
            a.send(ctx, NodeId(2), TestMsg { tag: 2, page: 0 });
        });
        engine.spawn_daemon("b", move |ctx| while b.recv(ctx).is_some() {});
        engine.spawn_daemon("c", move |ctx| while c.recv(ctx).is_some() {});
        engine.run().unwrap();
        let (m01, b01) = fabric.link_traffic(NodeId(0), NodeId(1));
        let (m02, _) = fabric.link_traffic(NodeId(0), NodeId(2));
        let (m10, _) = fabric.link_traffic(NodeId(1), NodeId(0));
        assert_eq!(m01, 2);
        assert!(b01 > 4096, "page payload counted: {b01}");
        assert_eq!(m02, 1);
        assert_eq!(m10, 0, "links are directed");
        let matrix = fabric.traffic_matrix();
        assert_eq!(matrix[0][1].0, 2);
    }

    #[test]
    #[should_panic(expected = "loopback")]
    fn loopback_send_is_rejected() {
        let engine = Engine::new();
        let fabric = fabric_with(RdmaStrategy::SinkCopy, 2);
        let a = fabric.endpoint(NodeId(0));
        engine.spawn("a", move |ctx| {
            a.send(ctx, NodeId(0), TestMsg { tag: 0, page: 0 });
        });
        let _ = engine.run();
    }

    #[test]
    #[should_panic(expected = "outside fabric")]
    fn endpoint_outside_fabric_is_rejected() {
        let fabric = fabric_with(RdmaStrategy::SinkCopy, 2);
        let _ = fabric.endpoint(NodeId(9));
    }
}
