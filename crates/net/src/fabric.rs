//! The simulated InfiniBand fabric.
//!
//! At boot, nodes establish one Reliable Connection per node pair
//! (§III-E). Each connection owns a send buffer pool, a receive buffer
//! pool, and an RDMA sink, all pre-mapped for DMA so the per-message path
//! avoids DMA mapping and memory-region registration. Small control
//! messages travel over VERB send/recv; page-sized payloads use the
//! configured [`RdmaStrategy`](crate::RdmaStrategy).
//!
//! The cost model is explicit: compose-copy at the sender, FIFO
//! serialization on the per-pair link at the configured bandwidth,
//! propagation latency, and (for the sink strategy) one drain-copy at the
//! receiver.
//!
//! # Delivery ordering
//!
//! Each directed node pair is one RC connection, so messages on the *same*
//! link are delivered in send order (their delivery times are clamped
//! monotonic per link, exactly as an RC queue pair would serialize them).
//! Across *different* links there is no such guarantee: the per-node inbox
//! is a priority queue keyed by arrival time (tie-broken by enqueue order),
//! so a message from a fast link overtakes an earlier-sent message still in
//! flight on a slow link.
//!
//! # Fault injection
//!
//! A fabric built with [`Fabric::with_faults`] consults a
//! [`dex_sim::FaultPlan`] on every send and receive: link faults add
//! delivery delay, and from a node's crash instant onward the fabric drops
//! every message it sends (at the source, before any buffer accounting)
//! and every message addressed to it. An empty plan disables the whole
//! layer — no extra branches on the hot path beyond one boolean test.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use parking_lot::Mutex;

use dex_sim::{Counters, FaultPlan, Resource, SimCtx, SimTime, ThreadId};

use crate::config::{NetConfig, RdmaStrategy};
use crate::metrics::MetricsRegistry;
use crate::pool::{CreditPool, TimedPool};

/// Identifies a node in the cluster.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct NodeId(pub u16);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node-{}", self.0)
    }
}

impl From<u16> for NodeId {
    fn from(v: u16) -> Self {
        NodeId(v)
    }
}

impl From<usize> for NodeId {
    fn from(v: usize) -> Self {
        NodeId(u16::try_from(v).expect("node index fits in u16"))
    }
}

impl From<i32> for NodeId {
    fn from(v: i32) -> Self {
        NodeId(u16::try_from(v).expect("node index fits in u16"))
    }
}

/// Sizing information the fabric needs from a message type.
///
/// Control messages report their payload via [`WireMessage::control_bytes`]
/// (a fixed header is added); messages carrying page data additionally
/// report [`WireMessage::page_bytes`], which selects the RDMA path.
pub trait WireMessage: Send + 'static {
    /// Bytes of control payload (excluding the fixed header).
    fn control_bytes(&self) -> usize;

    /// Bytes of bulk page payload carried (0 for pure control messages).
    fn page_bytes(&self) -> usize {
        0
    }
}

/// Fixed per-message header bytes (message kind, pid, addresses).
pub const HEADER_BYTES: usize = 48;

/// Span context riding a message envelope, out of band.
///
/// `0` means "no span". In a real system the span id would piggyback in
/// reserved header bits; here it travels next to the envelope and is
/// deliberately excluded from [`WireMessage::control_bytes`], so
/// enabling tracing never changes wire sizes, serialization times, or
/// the schedule.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct SpanContext(pub u64);

impl SpanContext {
    /// The absent context (id 0).
    pub const NONE: SpanContext = SpanContext(0);

    /// Whether no span is attached.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }

    /// Whether a span is attached.
    pub fn is_some(self) -> bool {
        self.0 != 0
    }
}

/// A received message with its sender.
#[derive(Debug)]
pub struct Delivery<M> {
    /// The sending node.
    pub src: NodeId,
    /// The message.
    pub msg: M,
    /// Span context the sender attached ([`SpanContext::NONE`] when the
    /// sender was not tracing).
    pub span: SpanContext,
}

struct Envelope<M> {
    src: NodeId,
    msg: M,
    span: SpanContext,
    deliver_at: SimTime,
    /// Receiver-side drain copy (sink strategy / verb-only pages).
    recv_copy_bytes: usize,
    /// Receive work request to recycle after processing.
    recv_credit: CreditPool,
    /// Sink chunk to recycle after the drain copy (sink strategy only).
    sink_credit: Option<CreditPool>,
}

struct Link {
    wire: Resource,
    send_pool: TimedPool,
    recv_pool: CreditPool,
    sink: CreditPool,
    /// Latest delivery time handed out on this link; RC ordering is
    /// enforced by clamping each new delivery time to be no earlier.
    last_deliver: Mutex<SimTime>,
    bytes: std::sync::atomic::AtomicU64,
    messages: std::sync::atomic::AtomicU64,
}

impl Link {
    fn new(config: &NetConfig) -> Self {
        Link {
            wire: Resource::with_rate_bytes_per_sec(config.bandwidth_bytes_per_sec),
            send_pool: TimedPool::new(config.send_pool_chunks),
            recv_pool: CreditPool::new(config.recv_pool_chunks),
            sink: CreditPool::new(config.rdma_sink_chunks),
            last_deliver: Mutex::new(SimTime::ZERO),
            bytes: std::sync::atomic::AtomicU64::new(0),
            messages: std::sync::atomic::AtomicU64::new(0),
        }
    }
}

/// Heap entry ordering the per-node inbox by `(arrival time, enqueue
/// order)`. Per-link FIFO follows from the per-link monotonic clamp on
/// `deliver_at` plus the strictly increasing `seq` tie-break.
struct QueuedEnvelope<M> {
    deliver_at: SimTime,
    seq: u64,
    env: Envelope<M>,
}

impl<M> PartialEq for QueuedEnvelope<M> {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at && self.seq == other.seq
    }
}

impl<M> Eq for QueuedEnvelope<M> {}

impl<M> PartialOrd for QueuedEnvelope<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for QueuedEnvelope<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deliver_at, self.seq).cmp(&(other.deliver_at, other.seq))
    }
}

/// A node's inbox: an arrival-time-ordered priority queue across links.
///
/// The previous implementation was a single FIFO in *send-call* order,
/// which head-of-line blocked every link behind the slowest one: `recv`
/// slept until the head envelope's `deliver_at` even when a later-queued
/// envelope from a faster link had already arrived.
struct Inbox<M> {
    inner: Mutex<InboxInner<M>>,
}

struct InboxInner<M> {
    heap: BinaryHeap<Reverse<QueuedEnvelope<M>>>,
    next_seq: u64,
    /// Receivers parked waiting for the inbox state to change; every push
    /// wakes them so they re-evaluate which envelope arrives first.
    waiters: Vec<ThreadId>,
}

impl<M> Inbox<M> {
    fn new() -> Self {
        Inbox {
            inner: Mutex::new(InboxInner {
                heap: BinaryHeap::new(),
                next_seq: 0,
                waiters: Vec::new(),
            }),
        }
    }

    fn push(&self, ctx: &SimCtx, env: Envelope<M>) {
        let woken: Vec<ThreadId> = {
            let mut inner = self.inner.lock();
            let seq = inner.next_seq;
            inner.next_seq += 1;
            inner.heap.push(Reverse(QueuedEnvelope {
                deliver_at: env.deliver_at,
                seq,
                env,
            }));
            std::mem::take(&mut inner.waiters)
        };
        for tid in woken {
            ctx.unpark(tid);
        }
    }
}

/// The cluster-wide fabric: per-pair RC connections plus per-node inboxes.
///
/// Handlers on each node receive messages through an [`Endpoint`]; any
/// simulated thread can send through one. The fabric is cheap to share
/// (`Arc` internally).
///
/// # Examples
///
/// ```
/// use dex_net::{Fabric, NetConfig, NodeId, WireMessage};
/// use dex_sim::Engine;
///
/// struct Ping(u32);
/// impl WireMessage for Ping {
///     fn control_bytes(&self) -> usize { 4 }
/// }
///
/// let engine = Engine::new();
/// let fabric = Fabric::<Ping>::new(NetConfig::default(), 2);
/// let a = fabric.endpoint(NodeId(0));
/// let b = fabric.endpoint(NodeId(1));
/// engine.spawn("sender", move |ctx| {
///     a.send(ctx, NodeId(1), Ping(7));
/// });
/// engine.spawn("receiver", move |ctx| {
///     let d = b.recv(ctx).expect("fabric open");
///     assert_eq!(d.src, NodeId(0));
///     assert_eq!(d.msg.0, 7);
///     assert!(ctx.now().as_nanos() >= 1_500, "propagation delay applies");
/// });
/// engine.run().unwrap();
/// ```
pub struct Fabric<M> {
    config: NetConfig,
    nodes: usize,
    /// One RC connection per *distinct* ordered pair; the diagonal holds
    /// `None` (loopback never touches the fabric, so self-links get no
    /// pools — the setup counters only account real pairs).
    links: Vec<Option<Link>>,
    inboxes: Vec<Inbox<M>>,
    plan: FaultPlan,
    /// Cached `!plan.is_empty()`: an empty plan disables fault handling
    /// entirely so clean runs stay bit-identical to plan-free runs.
    faults_enabled: bool,
    counters: Counters,
    /// Optional per-node/per-link metrics. `None` (the default) keeps
    /// the hot path at a single test per instrumentation point.
    metrics: Option<Arc<MetricsRegistry>>,
}

impl<M: WireMessage> Fabric<M> {
    /// Builds the fabric for `nodes` nodes: one RC connection per ordered
    /// pair, with pools sized from `config`.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn new(config: NetConfig, nodes: usize) -> Arc<Self> {
        Self::with_faults(config, nodes, FaultPlan::new())
    }

    /// Builds the fabric with a fault-injection plan (see the module docs).
    /// An empty plan behaves exactly like [`Fabric::new`].
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn with_faults(config: NetConfig, nodes: usize, plan: FaultPlan) -> Arc<Self> {
        Self::with_instrumentation(config, nodes, plan, None)
    }

    /// Builds the fabric with a fault plan and an optional
    /// [`MetricsRegistry`] receiving per-node/per-link traffic counters
    /// and pool/credit wait histograms. Metrics recording is pure
    /// bookkeeping: the instrumented schedule is identical to the bare
    /// one.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero, or if a registry is supplied whose
    /// node count differs from `nodes`.
    pub fn with_instrumentation(
        config: NetConfig,
        nodes: usize,
        plan: FaultPlan,
        metrics: Option<Arc<MetricsRegistry>>,
    ) -> Arc<Self> {
        assert!(nodes > 0, "fabric needs at least one node");
        if let Some(m) = &metrics {
            assert_eq!(m.nodes(), nodes, "metrics registry sized for the fabric");
        }
        let mut links = Vec::with_capacity(nodes * nodes);
        for src in 0..nodes {
            for dst in 0..nodes {
                links.push((src != dst).then(|| Link::new(&config)));
            }
        }
        let counters = Counters::new();
        // Account one-time setup work: every chunk of every pool is
        // DMA-mapped at boot; every sink chunk is registered as an RDMA MR.
        let pairs = (nodes * nodes.saturating_sub(1)) as u64;
        counters.add(
            "setup.dma_mappings",
            pairs * (config.send_pool_chunks + config.recv_pool_chunks) as u64,
        );
        counters.add(
            "setup.mr_registrations",
            pairs * config.rdma_sink_chunks as u64,
        );
        let faults_enabled = !plan.is_empty();
        Arc::new(Fabric {
            config,
            nodes,
            links,
            inboxes: (0..nodes).map(|_| Inbox::new()).collect(),
            plan,
            faults_enabled,
            counters,
            metrics,
        })
    }

    /// The fault plan this fabric was built with (empty for [`Fabric::new`]).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The attached metrics registry, if any.
    pub fn metrics(&self) -> Option<&Arc<MetricsRegistry>> {
        self.metrics.as_ref()
    }

    /// Whether a non-empty fault plan is active.
    pub fn faults_enabled(&self) -> bool {
        self.faults_enabled
    }

    /// Whether `node` has fail-stopped at or before `at` under the plan.
    /// Always `false` without a plan.
    pub fn node_crashed(&self, node: NodeId, at: SimTime) -> bool {
        self.faults_enabled && self.plan.crashed(node.0, at)
    }

    /// Pool chunks actually allocated at boot, as
    /// `(dma_mapped_chunks, mr_registered_chunks)` — what the
    /// `setup.dma_mappings` / `setup.mr_registrations` counters claim.
    pub fn allocated_setup_chunks(&self) -> (u64, u64) {
        let real_links = self.links.iter().flatten().count() as u64;
        (
            real_links * (self.config.send_pool_chunks + self.config.recv_pool_chunks) as u64,
            real_links * self.config.rdma_sink_chunks as u64,
        )
    }

    /// Number of nodes in the fabric.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The cost-model configuration.
    pub fn config(&self) -> &NetConfig {
        &self.config
    }

    /// Traffic counters (`msgs.sent`, `bytes.sent`, `pages.sent`, ...).
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// The endpoint of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the fabric.
    pub fn endpoint(self: &Arc<Self>, node: NodeId) -> Endpoint<M> {
        assert!(
            (node.0 as usize) < self.nodes,
            "node {node} outside fabric of {} nodes",
            self.nodes
        );
        Endpoint {
            node,
            fabric: Arc::clone(self),
        }
    }

    fn link(&self, src: NodeId, dst: NodeId) -> &Link {
        self.links[src.0 as usize * self.nodes + dst.0 as usize]
            .as_ref()
            .expect("self-links have no RC connection")
    }

    /// Per-directed-link traffic so far: `(messages, bytes)` sent from
    /// `src` to `dst` — the node-to-node traffic matrix analysts plot.
    /// Self-links carry no traffic by construction.
    pub fn link_traffic(&self, src: NodeId, dst: NodeId) -> (u64, u64) {
        match &self.links[src.0 as usize * self.nodes + dst.0 as usize] {
            None => (0, 0),
            Some(link) => (
                link.messages.load(std::sync::atomic::Ordering::Relaxed),
                link.bytes.load(std::sync::atomic::Ordering::Relaxed),
            ),
        }
    }

    /// The full traffic matrix, indexed `[src][dst]`, as `(messages,
    /// bytes)` tuples.
    pub fn traffic_matrix(&self) -> Vec<Vec<(u64, u64)>> {
        (0..self.nodes as u16)
            .map(|s| {
                (0..self.nodes as u16)
                    .map(|d| self.link_traffic(NodeId(s), NodeId(d)))
                    .collect()
            })
            .collect()
    }
}

impl<M> std::fmt::Debug for Fabric<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fabric")
            .field("nodes", &self.nodes)
            .field("counters", &self.counters)
            .finish()
    }
}

/// One node's attachment to the fabric: send to any peer, receive from
/// the node's inbox.
pub struct Endpoint<M> {
    node: NodeId,
    fabric: Arc<Fabric<M>>,
}

impl<M> Clone for Endpoint<M> {
    fn clone(&self) -> Self {
        Endpoint {
            node: self.node,
            fabric: Arc::clone(&self.fabric),
        }
    }
}

impl<M: WireMessage> Endpoint<M> {
    /// The node this endpoint belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The owning fabric.
    pub fn fabric(&self) -> &Arc<Fabric<M>> {
        &self.fabric
    }

    /// Sends `msg` to `dst`. Control messages go over VERB send/recv using
    /// the connection's send buffer pool; messages carrying page payload
    /// use the configured RDMA strategy. Posting is asynchronous: the
    /// caller pays compose/registration costs and any pool backpressure,
    /// not the full wire time.
    ///
    /// # Panics
    ///
    /// Panics if `dst` equals this endpoint's node (loopback messages
    /// indicate a protocol bug) or lies outside the fabric.
    pub fn send(&self, ctx: &SimCtx, dst: NodeId, msg: M) {
        self.send_traced(ctx, dst, msg, SpanContext::NONE);
    }

    /// Like [`Endpoint::send`], but attaches a span context that rides
    /// the envelope out of band and surfaces at the receiver as
    /// [`Delivery::span`]. Passing [`SpanContext::NONE`] is exactly
    /// `send` — the context influences neither costs nor ordering.
    ///
    /// # Panics
    ///
    /// Same as [`Endpoint::send`].
    pub fn send_traced(&self, ctx: &SimCtx, dst: NodeId, msg: M, span: SpanContext) {
        assert_ne!(self.node, dst, "loopback send on the fabric");
        let fabric = &self.fabric;
        let cfg = &fabric.config;
        let metrics = fabric.metrics.as_deref();
        let sent_at = ctx.now();
        // A crashed endpoint neither sends nor receives: drop before any
        // counter or buffer accounting so dead links stay quiet.
        if fabric.faults_enabled
            && (fabric.plan.crashed(self.node.0, sent_at) || fabric.plan.crashed(dst.0, sent_at))
        {
            fabric.counters.incr("faults.msgs_dropped");
            return;
        }
        let link = fabric.link(self.node, dst);
        let control = HEADER_BYTES + msg.control_bytes();
        let page = msg.page_bytes();

        fabric.counters.incr("msgs.sent");
        fabric.counters.add("bytes.sent", (control + page) as u64);
        link.messages
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        link.bytes.fetch_add(
            (control + page) as u64,
            std::sync::atomic::Ordering::Relaxed,
        );
        if let Some(m) = metrics {
            m.node(self.node).incr("msgs.sent");
            m.node(self.node).add("bytes.sent", (control + page) as u64);
            let l = m.link(self.node, dst);
            l.incr("msgs");
            l.add("bytes", (control + page) as u64);
            if page == 0 {
                l.incr("verb.sends");
            } else {
                l.incr("rdma.pages");
            }
        }

        let (wire_bytes, extra_latency, recv_copy_bytes, sink_credit) = if page == 0 {
            // VERB control path: compose into a pre-mapped pool chunk.
            (control, cfg.verb_latency, 0, None)
        } else {
            fabric.counters.incr("pages.sent");
            match cfg.rdma_strategy {
                RdmaStrategy::SinkCopy => {
                    // Wait for a sink chunk at the receiver, then RDMA-write
                    // into it; the receiver drains it with one memcpy.
                    let t0 = metrics.map(|_| ctx.now());
                    link.sink.acquire(ctx);
                    if let (Some(m), Some(t0)) = (metrics, t0) {
                        m.observe("net.sink_credit_wait", self.node, ctx.now() - t0);
                    }
                    (
                        control + page,
                        cfg.verb_latency + cfg.rdma_extra_latency,
                        page,
                        Some(link.sink.clone()),
                    )
                }
                RdmaStrategy::PerPageRegistration => {
                    // Register the final destination as an MR every time.
                    fabric.counters.incr("mr.registrations");
                    ctx.advance(cfg.mr_register_cost);
                    (
                        control + page,
                        cfg.verb_latency + cfg.rdma_extra_latency,
                        0,
                        None,
                    )
                }
                RdmaStrategy::VerbOnly => {
                    // Page travels like a big control message: copied into
                    // the send pool here, copied out at the receiver.
                    ctx.advance(cfg.memcpy_time(page));
                    (control + page, cfg.verb_latency, page, None)
                }
            }
        };

        let t0 = metrics.map(|_| ctx.now());
        let grant = link.send_pool.acquire(ctx);
        if let (Some(m), Some(t0)) = (metrics, t0) {
            m.observe("net.send_pool_wait", self.node, ctx.now() - t0);
        }
        ctx.advance(cfg.memcpy_time(control));
        let finish = link.wire.reserve_bytes(ctx.now(), wire_bytes as u64);
        link.send_pool.hold(grant, finish);
        let mut deliver_at = finish + extra_latency;
        if fabric.faults_enabled {
            deliver_at += fabric.plan.extra_delay(self.node.0, dst.0, sent_at);
        }
        // RC ordering: a message never arrives before an earlier message on
        // the same connection, even when its raw latency is smaller (e.g. a
        // control message composed after an RDMA page).
        {
            let mut last = link.last_deliver.lock();
            deliver_at = deliver_at.max(*last);
            *last = deliver_at;
        }
        let t0 = metrics.map(|_| ctx.now());
        link.recv_pool.acquire(ctx);
        if let (Some(m), Some(t0)) = (metrics, t0) {
            m.observe("net.recv_credit_wait", self.node, ctx.now() - t0);
        }
        fabric.inboxes[dst.0 as usize].push(
            ctx,
            Envelope {
                src: self.node,
                msg,
                span,
                deliver_at,
                recv_copy_bytes,
                recv_credit: link.recv_pool.clone(),
                sink_credit,
            },
        );
    }

    /// Receives the next message addressed to this node — the one with the
    /// earliest arrival time across all links — advancing virtual time to
    /// that arrival and paying receiver-side costs (sink drain copy).
    /// Returns `None` only when this node has crashed under the fault plan.
    pub fn recv(&self, ctx: &SimCtx) -> Option<Delivery<M>> {
        enum Wait {
            Until(SimTime),
            Forever,
        }
        let inbox = &self.fabric.inboxes[self.node.0 as usize];
        loop {
            if self.fabric.node_crashed(self.node, ctx.now()) {
                return None;
            }
            let wait = {
                let mut inner = inbox.inner.lock();
                let me = ctx.id();
                inner.waiters.retain(|w| *w != me);
                match inner.heap.peek() {
                    Some(Reverse(head)) if head.deliver_at <= ctx.now() => {
                        let Reverse(q) = inner.heap.pop().expect("peeked entry exists");
                        // Delivery choice point: when several envelopes have
                        // already arrived, an exploration policy may deliver
                        // any of them first (real NICs do not order across
                        // connections). Without a policy the head is taken
                        // unconditionally — the hot path is untouched.
                        let q = if ctx.has_schedule_policy() {
                            let now = ctx.now();
                            let mut arrived = vec![q];
                            while inner
                                .heap
                                .peek()
                                .is_some_and(|Reverse(h)| h.deliver_at <= now)
                            {
                                let Reverse(next) = inner.heap.pop().expect("peeked entry exists");
                                arrived.push(next);
                            }
                            let pick = ctx.choose("fabric.recv", arrived.len());
                            let chosen = arrived.swap_remove(pick);
                            for other in arrived {
                                inner.heap.push(Reverse(other));
                            }
                            chosen
                        } else {
                            q
                        };
                        drop(inner);
                        return Some(self.finish_delivery(ctx, q.env));
                    }
                    Some(Reverse(head)) => {
                        let at = head.deliver_at;
                        inner.waiters.push(me);
                        Wait::Until(at)
                    }
                    None => {
                        inner.waiters.push(me);
                        Wait::Forever
                    }
                }
            };
            match wait {
                // Wait for the head to arrive — unless a sender pushes an
                // envelope that arrives earlier and wakes us to re-evaluate.
                Wait::Until(at) => {
                    ctx.park_until(at);
                }
                Wait::Forever => ctx.park(),
            }
        }
    }

    /// Receives without blocking: `None` if no message has *arrived* yet.
    /// An envelope still in flight is left in the inbox untouched (this
    /// used to consume it and jump virtual time to its future arrival).
    pub fn try_recv(&self, ctx: &SimCtx) -> Option<Delivery<M>> {
        if self.fabric.node_crashed(self.node, ctx.now()) {
            return None;
        }
        let inbox = &self.fabric.inboxes[self.node.0 as usize];
        let env = {
            let mut inner = inbox.inner.lock();
            match inner.heap.peek() {
                Some(Reverse(head)) if head.deliver_at <= ctx.now() => {
                    let Reverse(q) = inner.heap.pop().expect("peeked entry exists");
                    q.env
                }
                _ => return None,
            }
        };
        Some(self.finish_delivery(ctx, env))
    }

    /// Receiver-side tail shared by `recv`/`try_recv`: drain copy, credit
    /// recycling, accounting.
    fn finish_delivery(&self, ctx: &SimCtx, env: Envelope<M>) -> Delivery<M> {
        if env.recv_copy_bytes > 0 {
            ctx.advance(self.fabric.config.memcpy_time(env.recv_copy_bytes));
        }
        if let Some(sink) = env.sink_credit {
            sink.release(ctx);
        }
        // Repost the receive work request.
        env.recv_credit.release(ctx);
        self.fabric.counters.incr("msgs.received");
        if let Some(m) = &self.fabric.metrics {
            m.node(self.node).incr("msgs.received");
        }
        Delivery {
            src: env.src,
            msg: env.msg,
            span: env.span,
        }
    }
}

impl<M> std::fmt::Debug for Endpoint<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Endpoint")
            .field("node", &self.node)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_sim::{Engine, SimDuration};
    use parking_lot::Mutex;

    struct TestMsg {
        tag: u64,
        page: usize,
    }

    impl WireMessage for TestMsg {
        fn control_bytes(&self) -> usize {
            16
        }
        fn page_bytes(&self) -> usize {
            self.page
        }
    }

    fn fabric_with(strategy: RdmaStrategy, nodes: usize) -> Arc<Fabric<TestMsg>> {
        let cfg = NetConfig {
            rdma_strategy: strategy,
            ..NetConfig::default()
        };
        Fabric::new(cfg, nodes)
    }

    #[test]
    fn control_message_arrives_after_latency() {
        let engine = Engine::new();
        let fabric = fabric_with(RdmaStrategy::SinkCopy, 2);
        let tx = fabric.endpoint(NodeId(0));
        let rx = fabric.endpoint(NodeId(1));
        engine.spawn("tx", move |ctx| {
            tx.send(ctx, NodeId(1), TestMsg { tag: 1, page: 0 })
        });
        engine.spawn("rx", move |ctx| {
            let d = rx.recv(ctx).unwrap();
            assert_eq!(d.msg.tag, 1);
            // compose copy + wire + the configured verb latency.
            let latency = NetConfig::default().verb_latency.as_nanos();
            assert!(ctx.now().as_nanos() >= latency);
            assert!(ctx.now().as_nanos() < latency + 2_000, "at {}", ctx.now());
        });
        engine.run().unwrap();
    }

    #[test]
    fn messages_between_same_pair_stay_ordered() {
        let engine = Engine::new();
        let fabric = fabric_with(RdmaStrategy::SinkCopy, 2);
        let tx = fabric.endpoint(NodeId(0));
        let rx = fabric.endpoint(NodeId(1));
        engine.spawn("tx", move |ctx| {
            for tag in 0..20 {
                tx.send(ctx, NodeId(1), TestMsg { tag, page: 0 });
            }
        });
        let got = Arc::new(Mutex::new(Vec::new()));
        {
            let got = Arc::clone(&got);
            engine.spawn("rx", move |ctx| {
                for _ in 0..20 {
                    got.lock().push(rx.recv(ctx).unwrap().msg.tag);
                }
            });
        }
        engine.run().unwrap();
        assert_eq!(*got.lock(), (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn page_transfer_is_slower_than_control() {
        fn one_way(page: usize) -> u64 {
            let engine = Engine::new();
            let fabric = fabric_with(RdmaStrategy::SinkCopy, 2);
            let tx = fabric.endpoint(NodeId(0));
            let rx = fabric.endpoint(NodeId(1));
            engine.spawn("tx", move |ctx| {
                tx.send(ctx, NodeId(1), TestMsg { tag: 0, page });
            });
            engine.spawn("rx", move |ctx| {
                rx.recv(ctx).unwrap();
            });
            engine.run().unwrap().as_nanos()
        }
        let control = one_way(0);
        let page = one_way(4096);
        assert!(page > control, "page {page}ns vs control {control}ns");
    }

    #[test]
    fn per_page_registration_charges_sender() {
        let engine = Engine::new();
        let fabric = fabric_with(RdmaStrategy::PerPageRegistration, 2);
        let tx = fabric.endpoint(NodeId(0));
        let rx = fabric.endpoint(NodeId(1));
        engine.spawn("tx", move |ctx| {
            let before = ctx.now();
            tx.send(ctx, NodeId(1), TestMsg { tag: 0, page: 4096 });
            let spent = ctx.now() - before;
            assert!(
                spent >= SimDuration::from_micros(5),
                "registration cost paid at the sender: {spent}"
            );
        });
        engine.spawn_daemon("rx", move |ctx| while rx.recv(ctx).is_some() {});
        engine.run().unwrap();
        assert_eq!(fabric.counters().get("mr.registrations"), 1);
    }

    #[test]
    fn sink_backpressure_blocks_page_floods() {
        let engine = Engine::new();
        let cfg = NetConfig {
            rdma_sink_chunks: 2,
            ..NetConfig::default()
        };
        let fabric = Fabric::<TestMsg>::new(cfg, 2);
        let tx = fabric.endpoint(NodeId(0));
        let rx = fabric.endpoint(NodeId(1));
        let sent_at = Arc::new(Mutex::new(Vec::new()));
        {
            let sent_at = Arc::clone(&sent_at);
            engine.spawn("tx", move |ctx| {
                for tag in 0..4 {
                    tx.send(ctx, NodeId(1), TestMsg { tag, page: 4096 });
                    sent_at.lock().push(ctx.now().as_nanos());
                }
            });
        }
        engine.spawn("rx", move |ctx| {
            for _ in 0..4 {
                ctx.advance(SimDuration::from_micros(50)); // slow consumer
                rx.recv(ctx).unwrap();
            }
        });
        engine.run().unwrap();
        let at = sent_at.lock().clone();
        assert!(at[1] < 50_000, "two sink credits available: {at:?}");
        assert!(at[2] >= 50_000, "third page waits for a drain: {at:?}");
    }

    #[test]
    fn counters_track_traffic() {
        let engine = Engine::new();
        let fabric = fabric_with(RdmaStrategy::SinkCopy, 3);
        let a = fabric.endpoint(NodeId(0));
        let b = fabric.endpoint(NodeId(1));
        let c = fabric.endpoint(NodeId(2));
        engine.spawn("a", move |ctx| {
            a.send(ctx, NodeId(1), TestMsg { tag: 0, page: 0 });
            a.send(ctx, NodeId(2), TestMsg { tag: 1, page: 4096 });
        });
        engine.spawn_daemon("b", move |ctx| while b.recv(ctx).is_some() {});
        engine.spawn_daemon("c", move |ctx| while c.recv(ctx).is_some() {});
        engine.run().unwrap();
        assert_eq!(fabric.counters().get("msgs.sent"), 2);
        assert_eq!(fabric.counters().get("msgs.received"), 2);
        assert_eq!(fabric.counters().get("pages.sent"), 1);
        assert!(fabric.counters().get("bytes.sent") > 4096);
    }

    #[test]
    fn link_traffic_matrix_tracks_directed_flows() {
        let engine = Engine::new();
        let fabric = fabric_with(RdmaStrategy::SinkCopy, 3);
        let a = fabric.endpoint(NodeId(0));
        let b = fabric.endpoint(NodeId(1));
        let c = fabric.endpoint(NodeId(2));
        engine.spawn("a", move |ctx| {
            a.send(ctx, NodeId(1), TestMsg { tag: 0, page: 0 });
            a.send(ctx, NodeId(1), TestMsg { tag: 1, page: 4096 });
            a.send(ctx, NodeId(2), TestMsg { tag: 2, page: 0 });
        });
        engine.spawn_daemon("b", move |ctx| while b.recv(ctx).is_some() {});
        engine.spawn_daemon("c", move |ctx| while c.recv(ctx).is_some() {});
        engine.run().unwrap();
        let (m01, b01) = fabric.link_traffic(NodeId(0), NodeId(1));
        let (m02, _) = fabric.link_traffic(NodeId(0), NodeId(2));
        let (m10, _) = fabric.link_traffic(NodeId(1), NodeId(0));
        assert_eq!(m01, 2);
        assert!(b01 > 4096, "page payload counted: {b01}");
        assert_eq!(m02, 1);
        assert_eq!(m10, 0, "links are directed");
        let matrix = fabric.traffic_matrix();
        assert_eq!(matrix[0][1].0, 2);
    }

    #[test]
    fn fast_link_overtakes_slow_link() {
        // Regression: the inbox used to be a single FIFO in send-call
        // order, so a control message from a fast link sat behind an
        // earlier-sent page still serializing on a slow link.
        let engine = Engine::new();
        let fabric = fabric_with(RdmaStrategy::SinkCopy, 3);
        let slow = fabric.endpoint(NodeId(0));
        let fast = fabric.endpoint(NodeId(1));
        let rx = fabric.endpoint(NodeId(2));
        engine.spawn("slow-sender", move |ctx| {
            // Page: wire time + verb + rdma latency, arrives ~5.6µs.
            slow.send(ctx, NodeId(2), TestMsg { tag: 0, page: 4096 });
        });
        engine.spawn("fast-sender", move |ctx| {
            ctx.advance(SimDuration::from_nanos(500));
            // Control sent *later* but arriving earlier (~3.5µs).
            fast.send(ctx, NodeId(2), TestMsg { tag: 1, page: 0 });
        });
        let got = Arc::new(Mutex::new(Vec::new()));
        {
            let got = Arc::clone(&got);
            engine.spawn("rx", move |ctx| {
                let first = rx.recv(ctx).unwrap();
                assert!(
                    ctx.now().as_nanos() < 5_000,
                    "first delivery must not wait for the slow page: {}",
                    ctx.now()
                );
                got.lock().push((first.src, first.msg.tag));
                let second = rx.recv(ctx).unwrap();
                got.lock().push((second.src, second.msg.tag));
            });
        }
        engine.run().unwrap();
        assert_eq!(*got.lock(), vec![(NodeId(1), 1), (NodeId(0), 0)]);
    }

    #[test]
    fn try_recv_does_not_consume_in_flight_envelopes() {
        // Regression: try_recv used to claim the head envelope and jump
        // virtual time forward to its future deliver_at.
        let engine = Engine::new();
        let fabric = fabric_with(RdmaStrategy::SinkCopy, 2);
        let tx = fabric.endpoint(NodeId(0));
        let rx = fabric.endpoint(NodeId(1));
        engine.spawn("tx", move |ctx| {
            tx.send(ctx, NodeId(1), TestMsg { tag: 7, page: 0 });
        });
        engine.spawn("rx", move |ctx| {
            assert!(rx.try_recv(ctx).is_none(), "nothing sent yet");
            ctx.advance(SimDuration::from_micros(1));
            // The envelope is queued but still in flight (arrives ~3µs).
            assert!(rx.try_recv(ctx).is_none(), "message has not arrived");
            assert_eq!(ctx.now().as_nanos(), 1_000, "no time travel");
            ctx.advance(SimDuration::from_micros(9));
            let d = rx.try_recv(ctx).expect("arrived by now");
            assert_eq!(d.msg.tag, 7);
            assert_eq!(ctx.now().as_nanos(), 10_000, "no sleep on arrival");
        });
        engine.run().unwrap();
    }

    #[test]
    fn setup_counters_match_allocated_chunks() {
        // Regression: pools used to be allocated for all nodes×nodes links
        // including self-links, while the setup counters only accounted
        // nodes×(nodes−1) ordered pairs.
        for nodes in [1usize, 2, 3, 5] {
            let fabric = fabric_with(RdmaStrategy::SinkCopy, nodes);
            let (dma, mr) = fabric.allocated_setup_chunks();
            assert_eq!(
                fabric.counters().get("setup.dma_mappings"),
                dma,
                "{nodes} nodes: DMA mappings claimed vs allocated"
            );
            assert_eq!(
                fabric.counters().get("setup.mr_registrations"),
                mr,
                "{nodes} nodes: MR registrations claimed vs allocated"
            );
        }
    }

    #[test]
    fn fault_plan_delay_postpones_delivery() {
        let engine = Engine::new();
        let mut plan = FaultPlan::new();
        plan.delay(
            0,
            1,
            SimTime::ZERO,
            SimTime::from_nanos(1_000),
            SimDuration::from_micros(100),
        );
        let fabric = Fabric::<TestMsg>::with_faults(NetConfig::default(), 2, plan);
        let tx = fabric.endpoint(NodeId(0));
        let rx = fabric.endpoint(NodeId(1));
        engine.spawn("tx", move |ctx| {
            tx.send(ctx, NodeId(1), TestMsg { tag: 0, page: 0 });
        });
        engine.spawn("rx", move |ctx| {
            rx.recv(ctx).unwrap();
            assert!(
                ctx.now().as_nanos() >= 100_000,
                "delay fault applies: {}",
                ctx.now()
            );
        });
        engine.run().unwrap();
    }

    #[test]
    fn messages_to_and_from_crashed_nodes_are_dropped() {
        let engine = Engine::new();
        let mut plan = FaultPlan::new();
        plan.crash(1, SimTime::from_nanos(5_000));
        let fabric = Fabric::<TestMsg>::with_faults(NetConfig::default(), 3, plan);
        let a = fabric.endpoint(NodeId(0));
        let dead = fabric.endpoint(NodeId(1));
        let dead_rx = fabric.endpoint(NodeId(1));
        {
            let fabric = Arc::clone(&fabric);
            engine.spawn("a", move |ctx| {
                ctx.advance(SimDuration::from_micros(10));
                a.send(ctx, NodeId(1), TestMsg { tag: 0, page: 0 });
                assert_eq!(fabric.counters().get("faults.msgs_dropped"), 1);
                assert_eq!(fabric.counters().get("msgs.sent"), 0);
            });
        }
        engine.spawn("dead-tx", move |ctx| {
            ctx.advance(SimDuration::from_micros(10));
            dead.send(ctx, NodeId(2), TestMsg { tag: 1, page: 0 });
        });
        engine.spawn("dead-rx", move |ctx| {
            ctx.advance(SimDuration::from_micros(10));
            assert!(dead_rx.recv(ctx).is_none(), "crashed node stops receiving");
        });
        engine.run().unwrap();
        assert_eq!(fabric.counters().get("faults.msgs_dropped"), 2);
    }

    #[test]
    fn span_context_rides_the_envelope_out_of_band() {
        let engine = Engine::new();
        let fabric = fabric_with(RdmaStrategy::SinkCopy, 2);
        let tx = fabric.endpoint(NodeId(0));
        let rx = fabric.endpoint(NodeId(1));
        engine.spawn("tx", move |ctx| {
            tx.send_traced(ctx, NodeId(1), TestMsg { tag: 1, page: 0 }, SpanContext(42));
            tx.send(ctx, NodeId(1), TestMsg { tag: 2, page: 0 });
        });
        engine.spawn("rx", move |ctx| {
            let first = rx.recv(ctx).unwrap();
            assert_eq!(first.span, SpanContext(42));
            let second = rx.recv(ctx).unwrap();
            assert!(second.span.is_none(), "plain send carries no span");
        });
        engine.run().unwrap();
    }

    #[test]
    fn metrics_registry_observes_per_node_and_per_link_traffic() {
        use crate::metrics::MetricsRegistry;

        fn run(metrics: Option<Arc<MetricsRegistry>>) -> u64 {
            let engine = Engine::new();
            let fabric = Fabric::<TestMsg>::with_instrumentation(
                NetConfig::default(),
                3,
                FaultPlan::new(),
                metrics,
            );
            let a = fabric.endpoint(NodeId(0));
            let b = fabric.endpoint(NodeId(1));
            let c = fabric.endpoint(NodeId(2));
            engine.spawn("a", move |ctx| {
                a.send(ctx, NodeId(1), TestMsg { tag: 0, page: 0 });
                a.send(ctx, NodeId(2), TestMsg { tag: 1, page: 4096 });
            });
            engine.spawn_daemon("b", move |ctx| while b.recv(ctx).is_some() {});
            engine.spawn_daemon("c", move |ctx| while c.recv(ctx).is_some() {});
            engine.run().unwrap().as_nanos()
        }

        let registry = MetricsRegistry::new(3);
        let instrumented = run(Some(Arc::clone(&registry)));
        let bare = run(None);
        assert_eq!(instrumented, bare, "metrics must not perturb the schedule");

        let snap = registry.snapshot();
        assert_eq!(snap.per_node[0][0], ("bytes.sent".to_string(), 4224));
        assert_eq!(snap.per_node[0][1], ("msgs.sent".to_string(), 2));
        let l02 = snap
            .per_link
            .iter()
            .find(|l| l.src == 0 && l.dst == 2)
            .expect("0->2 saw a page");
        assert!(l02.counters.contains(&("rdma.pages".to_string(), 1)));
        assert!(snap
            .histograms
            .iter()
            .any(|h| h.name == "net.send_pool_wait" && h.node == 0 && h.count == 2));
    }

    #[test]
    #[should_panic(expected = "loopback")]
    fn loopback_send_is_rejected() {
        let engine = Engine::new();
        let fabric = fabric_with(RdmaStrategy::SinkCopy, 2);
        let a = fabric.endpoint(NodeId(0));
        engine.spawn("a", move |ctx| {
            a.send(ctx, NodeId(0), TestMsg { tag: 0, page: 0 });
        });
        let _ = engine.run();
    }

    #[test]
    #[should_panic(expected = "outside fabric")]
    fn endpoint_outside_fabric_is_rejected() {
        let fabric = fabric_with(RdmaStrategy::SinkCopy, 2);
        let _ = fabric.endpoint(NodeId(9));
    }
}
