//! Network cost-model configuration.
//!
//! All timing constants of the simulated fabric live here, calibrated
//! against the paper's testbed (Mellanox ConnectX-4 VPI HCAs behind an
//! SX6012 switch, 56 Gb/s InfiniBand) and its measured micro-benchmarks
//! (13.6 µs to retrieve one 4 KiB page end-to-end, §V-D).

use dex_sim::SimDuration;

/// How page-sized payloads are moved between nodes (§III-E discusses why
/// DEX settles on the hybrid sink-and-copy scheme).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RdmaStrategy {
    /// The paper's hybrid: RDMA-write into a pre-registered *RDMA sink*
    /// chunk at the receiver, then one memcpy to the final destination.
    /// Pays a copy but no per-page registration.
    SinkCopy,
    /// RDMA directly into the final page, paying a memory-region
    /// registration for every transfer (what domain-specific systems with
    /// static footprints can avoid, but DEX cannot).
    PerPageRegistration,
    /// Send page data as an ordinary VERB message (copy on both sides,
    /// no RDMA) — the naive baseline.
    VerbOnly,
}

/// Cost model and sizing of the simulated InfiniBand fabric.
///
/// # Examples
///
/// ```
/// use dex_net::NetConfig;
///
/// let cfg = NetConfig::default();
/// // 4 KiB at 56 Gb/s is well under a microsecond on the wire.
/// let wire = cfg.wire_time(4096);
/// assert!(wire.as_micros_f64() < 1.0);
/// ```
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// One-way latency of a small VERB send/recv (switch + HCA + PCIe).
    pub verb_latency: SimDuration,
    /// Extra one-way latency of an RDMA write over a VERB message
    /// (completion control path).
    pub rdma_extra_latency: SimDuration,
    /// Link bandwidth in bytes per second (56 Gb/s FDR InfiniBand).
    pub bandwidth_bytes_per_sec: u64,
    /// Host memcpy bandwidth in bytes per second (sink-to-page copies).
    pub memcpy_bytes_per_sec: u64,
    /// Cost of mapping a buffer for DMA (avoided by the buffer pools).
    pub dma_map_cost: SimDuration,
    /// Cost of registering an RDMA memory region with the HCA (avoided by
    /// the pre-registered sink).
    pub mr_register_cost: SimDuration,
    /// Chunks in each connection's send buffer pool.
    pub send_pool_chunks: usize,
    /// Receive work requests posted per connection (recv buffer pool).
    pub recv_pool_chunks: usize,
    /// Chunks in each connection's RDMA sink.
    pub rdma_sink_chunks: usize,
    /// Strategy for page-sized payloads.
    pub rdma_strategy: RdmaStrategy,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            verb_latency: SimDuration::from_nanos(3_000),
            rdma_extra_latency: SimDuration::from_nanos(2_000),
            bandwidth_bytes_per_sec: 56_000_000_000 / 8,
            memcpy_bytes_per_sec: 10_000_000_000,
            dma_map_cost: SimDuration::from_nanos(900),
            mr_register_cost: SimDuration::from_micros(5),
            send_pool_chunks: 256,
            recv_pool_chunks: 1024,
            rdma_sink_chunks: 256,
            rdma_strategy: RdmaStrategy::SinkCopy,
        }
    }
}

/// The tunable timing components of the [`NetConfig`], by registry
/// name — the fabric half of the `dex-check whatif` sweep surface.
/// Names carry a `net.` prefix so they never collide with
/// `CostModel` components in a combined registry. Sizing knobs
/// (pool chunk counts, strategy) are structural, not scalable, and
/// are deliberately absent.
pub const NET_COMPONENTS: &[&str] = &[
    "net.verb_latency",
    "net.rdma_extra_latency",
    "net.bandwidth",
    "net.memcpy_bandwidth",
    "net.dma_map_cost",
    "net.mr_register_cost",
];

impl NetConfig {
    /// The paper's testbed: 56 Gb/s FDR InfiniBand (same as `default()`).
    pub fn infiniband_56g() -> Self {
        NetConfig::default()
    }

    /// The registry of perturbable component names, in declaration order.
    pub fn components() -> &'static [&'static str] {
        NET_COMPONENTS
    }

    /// Scales one named component's *time cost* by `factor`, mirroring
    /// `CostModel::perturb`: latencies are multiplied, bandwidths divided
    /// (so `factor` always reads as "what happens to the time this
    /// component charges"). Errors on unknown names or non-finite /
    /// non-positive factors; the config is unchanged on error.
    pub fn perturb(&mut self, component: &str, factor: f64) -> Result<(), String> {
        if !factor.is_finite() || factor <= 0.0 {
            return Err(format!(
                "perturbation factor must be finite and positive, got {factor}"
            ));
        }
        let scale = |d: &mut SimDuration| {
            *d = SimDuration::from_nanos((d.as_nanos() as f64 * factor).round() as u64);
        };
        let slow = |b: &mut u64| {
            *b = ((*b as f64 / factor).round() as u64).max(1);
        };
        match component {
            "net.verb_latency" => scale(&mut self.verb_latency),
            "net.rdma_extra_latency" => scale(&mut self.rdma_extra_latency),
            "net.bandwidth" => slow(&mut self.bandwidth_bytes_per_sec),
            "net.memcpy_bandwidth" => slow(&mut self.memcpy_bytes_per_sec),
            "net.dma_map_cost" => scale(&mut self.dma_map_cost),
            "net.mr_register_cost" => scale(&mut self.mr_register_cost),
            other => {
                return Err(format!(
                    "unknown net component `{other}` (known: {})",
                    NET_COMPONENTS.join(", ")
                ))
            }
        }
        Ok(())
    }

    /// The current magnitude of one component, in the unit `perturb`
    /// scales (nanoseconds for latencies, ns-per-page for bandwidths).
    /// `None` for unknown names.
    pub fn component_magnitude(&self, component: &str) -> Option<f64> {
        Some(match component {
            "net.verb_latency" => self.verb_latency.as_nanos() as f64,
            "net.rdma_extra_latency" => self.rdma_extra_latency.as_nanos() as f64,
            "net.bandwidth" => 4096.0 * 1e9 / self.bandwidth_bytes_per_sec as f64,
            "net.memcpy_bandwidth" => 4096.0 * 1e9 / self.memcpy_bytes_per_sec as f64,
            "net.dma_map_cost" => self.dma_map_cost.as_nanos() as f64,
            "net.mr_register_cost" => self.mr_register_cost.as_nanos() as f64,
            _ => return None,
        })
    }

    /// A 1990s-DSM-era fabric: 100 Mb/s switched Ethernet with a kernel
    /// TCP/IP stack — several orders of magnitude slower than local
    /// memory, the regime §II blames for classic DSM's failure.
    pub fn ethernet_100m() -> Self {
        NetConfig {
            verb_latency: SimDuration::from_micros(300),
            rdma_extra_latency: SimDuration::ZERO,
            bandwidth_bytes_per_sec: 100_000_000 / 8,
            rdma_strategy: RdmaStrategy::VerbOnly,
            ..NetConfig::default()
        }
    }

    /// Commodity 10 Gb/s Ethernet with a tuned kernel stack (no RDMA).
    pub fn ethernet_10g() -> Self {
        NetConfig {
            verb_latency: SimDuration::from_micros(25),
            rdma_extra_latency: SimDuration::ZERO,
            bandwidth_bytes_per_sec: 10_000_000_000 / 8,
            rdma_strategy: RdmaStrategy::VerbOnly,
            ..NetConfig::default()
        }
    }

    /// The interconnects §II cites as closing the gap to inter-socket
    /// links (Gen-Z class: 400 Gb/s, ~300 ns).
    pub fn next_gen_400g() -> Self {
        NetConfig {
            verb_latency: SimDuration::from_nanos(300),
            rdma_extra_latency: SimDuration::from_nanos(200),
            bandwidth_bytes_per_sec: 400_000_000_000 / 8,
            ..NetConfig::default()
        }
    }

    /// Serialization time of `bytes` on the link.
    pub fn wire_time(&self, bytes: usize) -> SimDuration {
        SimDuration::from_nanos(
            (bytes as f64 * 1e9 / self.bandwidth_bytes_per_sec as f64).ceil() as u64,
        )
    }

    /// Host copy time for `bytes` (sink drain, VERB compose).
    pub fn memcpy_time(&self, bytes: usize) -> SimDuration {
        SimDuration::from_nanos(
            (bytes as f64 * 1e9 / self.memcpy_bytes_per_sec as f64).ceil() as u64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_wire_time_for_page_is_sub_microsecond() {
        let cfg = NetConfig::default();
        let t = cfg.wire_time(4096);
        // 4096 B / 7 GB/s = ~585 ns.
        assert!(t.as_nanos() > 500 && t.as_nanos() < 700, "{t}");
    }

    #[test]
    fn memcpy_time_scales_linearly() {
        let cfg = NetConfig::default();
        assert_eq!(
            cfg.memcpy_time(8192).as_nanos(),
            2 * cfg.memcpy_time(4096).as_nanos()
        );
    }

    #[test]
    fn zero_bytes_cost_nothing_on_the_wire() {
        let cfg = NetConfig::default();
        assert_eq!(cfg.wire_time(0), SimDuration::ZERO);
        assert_eq!(cfg.memcpy_time(0), SimDuration::ZERO);
    }

    #[test]
    fn default_matches_paper_testbed() {
        let cfg = NetConfig::default();
        assert_eq!(cfg.bandwidth_bytes_per_sec, 7_000_000_000); // 56 Gb/s
        assert_eq!(cfg.rdma_strategy, RdmaStrategy::SinkCopy);
    }

    #[test]
    fn fabric_generations_are_ordered() {
        // Each generation strictly improves page-transfer time — the §II
        // trend the motivation rests on.
        let page = |cfg: &NetConfig| {
            (cfg.verb_latency + cfg.rdma_extra_latency + cfg.wire_time(4096)).as_nanos()
        };
        let old = page(&NetConfig::ethernet_100m());
        let tcp = page(&NetConfig::ethernet_10g());
        let ib = page(&NetConfig::infiniband_56g());
        let next = page(&NetConfig::next_gen_400g());
        assert!(old > 10 * tcp, "100M {old} vs 10G {tcp}");
        assert!(tcp > 3 * ib, "10G {tcp} vs IB {ib}");
        assert!(ib > 3 * next, "IB {ib} vs 400G {next}");
    }

    #[test]
    fn every_net_component_perturbs_and_reports() {
        for &name in NetConfig::components() {
            let mut cfg = NetConfig::default();
            let before = cfg.component_magnitude(name).unwrap();
            assert!(before > 0.0, "{name} magnitude must be positive");
            cfg.perturb(name, 2.0).unwrap();
            let after = cfg.component_magnitude(name).unwrap();
            let ratio = after / before;
            assert!(
                (ratio - 2.0).abs() < 0.01,
                "{name}: {before} -> {after} (ratio {ratio})"
            );
        }
    }

    #[test]
    fn net_perturb_rejects_bad_input() {
        let mut cfg = NetConfig::default();
        assert!(cfg.perturb("verb_latency", 0.5).is_err(), "prefix required");
        assert!(cfg.perturb("net.bandwidth", 0.0).is_err());
        assert!(cfg.perturb("net.bandwidth", f64::NAN).is_err());
        assert_eq!(
            cfg.bandwidth_bytes_per_sec,
            NetConfig::default().bandwidth_bytes_per_sec
        );
    }

    #[test]
    fn net_bandwidth_perturb_inverts() {
        let mut cfg = NetConfig::default();
        cfg.perturb("net.bandwidth", 2.0).unwrap();
        assert_eq!(
            cfg.bandwidth_bytes_per_sec,
            NetConfig::default().bandwidth_bytes_per_sec / 2
        );
        // Wire time for a page doubled.
        assert_eq!(
            cfg.wire_time(4096).as_nanos(),
            2 * NetConfig::default().wire_time(4096).as_nanos() - 1,
        );
    }

    #[test]
    fn legacy_fabrics_have_no_rdma() {
        assert_eq!(
            NetConfig::ethernet_100m().rdma_strategy,
            RdmaStrategy::VerbOnly
        );
        assert_eq!(
            NetConfig::ethernet_10g().rdma_strategy,
            RdmaStrategy::VerbOnly
        );
    }
}
