//! Windowed time-series built from a [`MetricsRegistry`] by the
//! continuous-telemetry sampler.
//!
//! The registry's counters are cumulative; a [`SeriesBuilder`] turns them
//! into per-window *deltas* by diffing successive snapshots at each
//! window boundary, and turns the registry's window tap (raw samples
//! since the last boundary) into per-window latency quantiles. Windows
//! are half-open `[k*w, (k+1)*w)` in virtual time; window `k` covers
//! exactly the events with `k*w <= t < (k+1)*w`.
//!
//! Everything here is pure bookkeeping over data the registry already
//! collects: building a series never advances virtual time, parks, or
//! sends, so a run with telemetry enabled takes exactly the same event
//! schedule as one without (enforced by test in `dex-core`).

use std::collections::BTreeMap;
use std::sync::Arc;

use dex_sim::{SimDuration, SimTime};

use crate::metrics::MetricsRegistry;
use crate::NodeId;

/// What a [`CounterPoint`] is dimensioned by: one node, or one directed
/// link.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SeriesScope {
    /// A per-node counter.
    Node(u16),
    /// A per-link counter (`src`, `dst`).
    Link(u16, u16),
}

impl std::fmt::Display for SeriesScope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SeriesScope::Node(n) => write!(f, "node{n}"),
            SeriesScope::Link(s, d) => write!(f, "link{s}>{d}"),
        }
    }
}

/// One counter's increment over one window. Zero deltas are not stored:
/// absence of a point means the counter did not move in that window.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterPoint {
    /// Window index (window `k` covers `[k*w, (k+1)*w)`).
    pub window: u64,
    /// The node or link the counter belongs to.
    pub scope: SeriesScope,
    /// Counter name (e.g. `dsm.faults_write`, `bytes`).
    pub name: String,
    /// Increment over this window.
    pub delta: u64,
}

/// One histogram's per-window quantiles, computed over exactly the
/// samples recorded inside the window (not the cumulative reservoir).
/// Only windows with at least one sample produce a point, so `count` is
/// always positive — "no samples" is the absence of the point.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistPoint {
    /// Window index.
    pub window: u64,
    /// The node the samples belong to.
    pub node: u16,
    /// Histogram name.
    pub name: String,
    /// Samples inside this window (always > 0).
    pub count: u64,
    /// Median of the window's samples.
    pub p50: SimDuration,
    /// 95th percentile of the window's samples.
    pub p95: SimDuration,
    /// 99th percentile of the window's samples.
    pub p99: SimDuration,
}

/// A complete windowed time-series for one run.
#[derive(Clone, Debug, Default)]
pub struct TimeSeries {
    /// Window width in virtual time.
    pub window: SimDuration,
    /// Number of windows recorded, including a trailing partial window
    /// if the run ended mid-window with activity in it.
    pub windows: u64,
    /// The virtual instant the series ends (final simulation clock).
    pub end: SimTime,
    /// Per-window counter deltas, ordered by `(window, scope, name)`.
    pub counters: Vec<CounterPoint>,
    /// Per-window histogram quantiles, ordered by `(window, name, node)`.
    pub hists: Vec<HistPoint>,
}

impl TimeSeries {
    /// All counter points of window `k`, in order.
    pub fn counters_in(&self, window: u64) -> impl Iterator<Item = &CounterPoint> {
        self.counters.iter().filter(move |p| p.window == window)
    }

    /// All histogram points of window `k`, in order.
    pub fn hists_in(&self, window: u64) -> impl Iterator<Item = &HistPoint> {
        self.hists.iter().filter(move |p| p.window == window)
    }
}

/// The points one sampler invocation appended — handed to health
/// monitors so they can judge the freshest window without re-scanning
/// the whole series.
#[derive(Clone, Debug, Default)]
pub struct WindowPoints {
    /// The window these points cover.
    pub window: u64,
    /// Counter deltas of this window.
    pub counters: Vec<CounterPoint>,
    /// Histogram quantiles of this window.
    pub hists: Vec<HistPoint>,
}

/// Accumulates a [`TimeSeries`] by sampling a registry at successive
/// window boundaries.
///
/// Constructing the builder attaches the registry's window tap; each
/// [`SeriesBuilder::sample`] call closes one window (diffing counters,
/// draining the tap); [`SeriesBuilder::finish`] closes a trailing
/// partial window if the run ended mid-window.
pub struct SeriesBuilder {
    registry: Arc<MetricsRegistry>,
    window: SimDuration,
    next_window: u64,
    prev_node: BTreeMap<(u16, String), u64>,
    prev_link: BTreeMap<(u16, u16, String), u64>,
    counters: Vec<CounterPoint>,
    hists: Vec<HistPoint>,
}

impl SeriesBuilder {
    /// Creates a builder over `registry` with the given window width and
    /// attaches the registry's window tap.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(registry: Arc<MetricsRegistry>, window: SimDuration) -> Self {
        assert!(!window.is_zero(), "series window must be positive");
        registry.enable_window_tap();
        SeriesBuilder {
            registry,
            window,
            next_window: 0,
            prev_node: BTreeMap::new(),
            prev_link: BTreeMap::new(),
            counters: Vec::new(),
            hists: Vec::new(),
        }
    }

    /// Closes the current window: every counter that moved since the
    /// last boundary becomes a [`CounterPoint`], every histogram with
    /// tapped samples becomes a [`HistPoint`]. Returns the new points
    /// (also retained internally for the final series).
    pub fn sample(&mut self) -> WindowPoints {
        let window = self.next_window;
        self.next_window += 1;
        let mut points = WindowPoints {
            window,
            counters: Vec::new(),
            hists: Vec::new(),
        };

        let nodes = self.registry.nodes() as u16;
        for node in 0..nodes {
            for (name, value) in self.registry.node(NodeId(node)).snapshot() {
                let prev = self
                    .prev_node
                    .insert((node, name.clone()), value)
                    .unwrap_or(0);
                if value > prev {
                    points.counters.push(CounterPoint {
                        window,
                        scope: SeriesScope::Node(node),
                        name,
                        delta: value - prev,
                    });
                }
            }
        }
        for src in 0..nodes {
            for dst in 0..nodes {
                for (name, value) in self.registry.link(NodeId(src), NodeId(dst)).snapshot() {
                    let prev = self
                        .prev_link
                        .insert((src, dst, name.clone()), value)
                        .unwrap_or(0);
                    if value > prev {
                        points.counters.push(CounterPoint {
                            window,
                            scope: SeriesScope::Link(src, dst),
                            name,
                            delta: value - prev,
                        });
                    }
                }
            }
        }

        for ((name, node), mut samples) in self.registry.drain_window_samples() {
            if samples.is_empty() {
                continue;
            }
            samples.sort_unstable();
            let q = |p: f64| {
                let rank = ((p / 100.0) * (samples.len() - 1) as f64).round() as usize;
                SimDuration::from_nanos(samples[rank.min(samples.len() - 1)])
            };
            points.hists.push(HistPoint {
                window,
                node,
                name,
                count: samples.len() as u64,
                p50: q(50.0),
                p95: q(95.0),
                p99: q(99.0),
            });
        }

        self.counters.extend(points.counters.iter().cloned());
        self.hists.extend(points.hists.iter().cloned());
        points
    }

    /// Closes a trailing partial window if anything moved since the last
    /// boundary, and returns the finished series ending at `end` (the
    /// final simulation clock). The partial window's points, if any, are
    /// also returned so monitors can judge it.
    pub fn finish(mut self, end: SimTime) -> (TimeSeries, Option<WindowPoints>) {
        let tail = self.sample();
        let tail_nonempty = !tail.counters.is_empty() || !tail.hists.is_empty();
        let windows = if tail_nonempty {
            self.next_window
        } else {
            self.next_window - 1
        };
        let series = TimeSeries {
            window: self.window,
            windows,
            end,
            counters: self.counters,
            hists: self.hists,
        };
        (series, tail_nonempty.then_some(tail))
    }
}

impl std::fmt::Debug for SeriesBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SeriesBuilder")
            .field("window", &self.window)
            .field("next_window", &self.next_window)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_deltas_are_per_window() {
        let m = MetricsRegistry::new(2);
        let mut b = SeriesBuilder::new(Arc::clone(&m), SimDuration::from_micros(10));
        m.node(NodeId(0)).add("faults", 3);
        let w0 = b.sample();
        m.node(NodeId(0)).add("faults", 2);
        m.link(NodeId(0), NodeId(1)).add("bytes", 100);
        let w1 = b.sample();
        assert_eq!(w0.counters.len(), 1);
        assert_eq!(w0.counters[0].delta, 3);
        assert_eq!(w1.counters.len(), 2);
        let faults = w1.counters.iter().find(|p| p.name == "faults").unwrap();
        assert_eq!(faults.delta, 2, "window 1 sees only the increment");
        let bytes = w1.counters.iter().find(|p| p.name == "bytes").unwrap();
        assert_eq!(bytes.scope, SeriesScope::Link(0, 1));
        assert_eq!(bytes.delta, 100);
    }

    #[test]
    fn idle_windows_produce_no_points() {
        let m = MetricsRegistry::new(1);
        let mut b = SeriesBuilder::new(Arc::clone(&m), SimDuration::from_micros(10));
        m.node(NodeId(0)).incr("x");
        b.sample();
        let idle = b.sample();
        assert!(idle.counters.is_empty() && idle.hists.is_empty());
    }

    #[test]
    fn hist_points_cover_only_the_window() {
        let m = MetricsRegistry::new(1);
        let mut b = SeriesBuilder::new(Arc::clone(&m), SimDuration::from_micros(10));
        m.observe("wait", NodeId(0), SimDuration::from_micros(100));
        b.sample();
        for us in [1u64, 2, 3] {
            m.observe("wait", NodeId(0), SimDuration::from_micros(us));
        }
        let w1 = b.sample();
        assert_eq!(w1.hists.len(), 1);
        let h = &w1.hists[0];
        assert_eq!(h.count, 3);
        // The 100µs sample of window 0 must not leak into window 1.
        assert_eq!(h.p50, SimDuration::from_micros(2));
        assert_eq!(h.p99, SimDuration::from_micros(3));
    }

    #[test]
    fn finish_closes_a_partial_tail_window() {
        let m = MetricsRegistry::new(1);
        let mut b = SeriesBuilder::new(Arc::clone(&m), SimDuration::from_micros(10));
        m.node(NodeId(0)).incr("x");
        b.sample();
        m.node(NodeId(0)).incr("x");
        let end = SimTime::from_nanos(15_000);
        let (series, tail) = b.finish(end);
        assert_eq!(series.windows, 2, "full window 0 plus partial window 1");
        assert_eq!(series.end, end);
        let tail = tail.expect("the tail window saw an increment");
        assert_eq!(tail.window, 1);
        assert_eq!(series.counters_in(1).count(), 1);

        // An empty tail is not counted as a window.
        let m = MetricsRegistry::new(1);
        let mut b = SeriesBuilder::new(Arc::clone(&m), SimDuration::from_micros(10));
        m.node(NodeId(0)).incr("x");
        b.sample();
        let (series, tail) = b.finish(SimTime::from_nanos(10_000));
        assert_eq!(series.windows, 1);
        assert!(tail.is_none());
    }
}
