//! Per-cluster metrics: node- and link-dimensioned counters plus named
//! latency histograms.
//!
//! The fabric's built-in [`Counters`](dex_sim::Counters) aggregate over
//! the whole cluster; the paper's profiling workflow (§IV) needs the
//! *distribution* — which node retries, which link stalls on credits,
//! where page traffic concentrates. A [`MetricsRegistry`] is attached to
//! a run explicitly (`ClusterConfig::with_metrics` in `dex-core`) and is
//! pure bookkeeping: recording into it never advances virtual time,
//! parks, or sends, so an instrumented run takes exactly the same
//! schedule as a bare one.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

use dex_sim::{Counters, Histogram, SimDuration};

use crate::fabric::NodeId;

/// Node- and link-dimensioned counters and histograms for one cluster.
///
/// # Examples
///
/// ```
/// use dex_net::{MetricsRegistry, NodeId};
/// use dex_sim::SimDuration;
///
/// let m = MetricsRegistry::new(2);
/// m.node(NodeId(1)).incr("faults");
/// m.link(NodeId(0), NodeId(1)).add("bytes", 4096);
/// m.observe("net.send_pool_wait", NodeId(0), SimDuration::from_micros(3));
/// let snap = m.snapshot();
/// assert_eq!(snap.per_node[1], vec![("faults".to_string(), 1)]);
/// ```
pub struct MetricsRegistry {
    nodes: usize,
    per_node: Vec<Counters>,
    /// Row-major `src * nodes + dst`; the diagonal exists but stays
    /// empty (loopback never touches the fabric).
    per_link: Vec<Counters>,
    hists: Mutex<BTreeMap<(String, u16), Histogram>>,
}

impl MetricsRegistry {
    /// Creates a registry for a cluster of `nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn new(nodes: usize) -> Arc<Self> {
        assert!(nodes > 0, "metrics registry needs at least one node");
        Arc::new(MetricsRegistry {
            nodes,
            per_node: (0..nodes).map(|_| Counters::new()).collect(),
            per_link: (0..nodes * nodes).map(|_| Counters::new()).collect(),
            hists: Mutex::new(BTreeMap::new()),
        })
    }

    /// Number of nodes the registry covers.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The counter set of one node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the cluster.
    pub fn node(&self, node: NodeId) -> &Counters {
        &self.per_node[node.0 as usize]
    }

    /// The counter set of the directed link `src → dst`.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is outside the cluster.
    pub fn link(&self, src: NodeId, dst: NodeId) -> &Counters {
        &self.per_link[src.0 as usize * self.nodes + dst.0 as usize]
    }

    /// Records one duration sample into the histogram `name` at `node`
    /// (created on first use).
    pub fn observe(&self, name: &str, node: NodeId, d: SimDuration) {
        let hist = {
            let mut hists = self.hists.lock();
            hists.entry((name.to_string(), node.0)).or_default().clone()
        };
        hist.record(d);
    }

    /// A point-in-time copy of every counter and histogram summary.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let summarize = |name: &str, node: u16, h: &Histogram| HistogramSummary {
            name: name.to_string(),
            node,
            count: h.count(),
            min: h.min(),
            max: h.max(),
            mean: h.mean(),
            p50: h.percentile(50.0),
            p95: h.percentile(95.0),
            p99: h.percentile(99.0),
        };
        MetricsSnapshot {
            nodes: self.nodes,
            per_node: self.per_node.iter().map(Counters::snapshot).collect(),
            per_link: (0..self.nodes as u16)
                .flat_map(|src| (0..self.nodes as u16).map(move |dst| (src, dst)))
                .filter_map(|(src, dst)| {
                    let counters = self.link(NodeId(src), NodeId(dst)).snapshot();
                    (!counters.is_empty()).then_some(LinkMetrics { src, dst, counters })
                })
                .collect(),
            histograms: self
                .hists
                .lock()
                .iter()
                .map(|((name, node), h)| summarize(name, *node, h))
                .collect(),
        }
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("nodes", &self.nodes)
            .finish()
    }
}

/// Counters of one directed link that saw traffic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LinkMetrics {
    /// Sending node.
    pub src: u16,
    /// Receiving node.
    pub dst: u16,
    /// Counter snapshot, sorted by name.
    pub counters: Vec<(String, u64)>,
}

/// Summary statistics of one `(name, node)` histogram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Histogram name (e.g. `net.send_pool_wait`).
    pub name: String,
    /// The node the samples belong to.
    pub node: u16,
    /// Number of samples.
    pub count: u64,
    /// Smallest sample.
    pub min: SimDuration,
    /// Largest sample.
    pub max: SimDuration,
    /// Arithmetic mean.
    pub mean: SimDuration,
    /// Median over retained samples.
    pub p50: SimDuration,
    /// 95th percentile over retained samples.
    pub p95: SimDuration,
    /// 99th percentile over retained samples.
    pub p99: SimDuration,
}

/// A frozen copy of a registry, safe to inspect after the run ends.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Number of nodes covered.
    pub nodes: usize,
    /// Per-node counter snapshots, indexed by node id.
    pub per_node: Vec<Vec<(String, u64)>>,
    /// Per-link counters for links that saw traffic.
    pub per_link: Vec<LinkMetrics>,
    /// Histogram summaries, sorted by `(name, node)`.
    pub histograms: Vec<HistogramSummary>,
}

impl MetricsSnapshot {
    /// Renders the snapshot as an indented text report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("metrics: {} nodes\n", self.nodes));
        for (node, counters) in self.per_node.iter().enumerate() {
            if counters.is_empty() {
                continue;
            }
            out.push_str(&format!("  node {node}\n"));
            for (name, v) in counters {
                out.push_str(&format!("    {name:<28} {v}\n"));
            }
        }
        for link in &self.per_link {
            out.push_str(&format!("  link {} -> {}\n", link.src, link.dst));
            for (name, v) in &link.counters {
                out.push_str(&format!("    {name:<28} {v}\n"));
            }
        }
        for h in &self.histograms {
            out.push_str(&format!(
                "  hist {}@node{}: n={} mean={} p50={} p95={} p99={} max={}\n",
                h.name, h.node, h.count, h.mean, h.p50, h.p95, h.p99, h.max
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_dimensioned_by_node_and_link() {
        let m = MetricsRegistry::new(3);
        m.node(NodeId(0)).incr("faults");
        m.node(NodeId(2)).add("faults", 2);
        m.link(NodeId(0), NodeId(2)).add("bytes", 100);
        m.link(NodeId(2), NodeId(0)).add("bytes", 7);
        let snap = m.snapshot();
        assert_eq!(snap.per_node[0], vec![("faults".to_string(), 1)]);
        assert!(snap.per_node[1].is_empty());
        assert_eq!(snap.per_node[2], vec![("faults".to_string(), 2)]);
        assert_eq!(snap.per_link.len(), 2, "only links with traffic");
        assert_eq!(snap.per_link[0].src, 0);
        assert_eq!(snap.per_link[0].dst, 2);
        assert_eq!(snap.per_link[1].counters, vec![("bytes".to_string(), 7)]);
    }

    #[test]
    fn histograms_summarize_per_node() {
        let m = MetricsRegistry::new(2);
        for us in [10u64, 20, 30] {
            m.observe("wait", NodeId(1), SimDuration::from_micros(us));
        }
        let snap = m.snapshot();
        assert_eq!(snap.histograms.len(), 1);
        let h = &snap.histograms[0];
        assert_eq!((h.name.as_str(), h.node, h.count), ("wait", 1, 3));
        assert_eq!(h.mean, SimDuration::from_micros(20));
        assert_eq!(h.p50, SimDuration::from_micros(20));
        let text = snap.render();
        assert!(text.contains("hist wait@node1"), "{text}");
    }
}
