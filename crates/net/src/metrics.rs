//! Per-cluster metrics: node- and link-dimensioned counters plus named
//! latency histograms.
//!
//! The fabric's built-in [`Counters`](dex_sim::Counters) aggregate over
//! the whole cluster; the paper's profiling workflow (§IV) needs the
//! *distribution* — which node retries, which link stalls on credits,
//! where page traffic concentrates. A [`MetricsRegistry`] is attached to
//! a run explicitly (`ClusterConfig::with_metrics` in `dex-core`) and is
//! pure bookkeeping: recording into it never advances virtual time,
//! parks, or sends, so an instrumented run takes exactly the same
//! schedule as a bare one.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

use dex_sim::{Counters, Histogram, SimDuration};

use crate::fabric::NodeId;

/// Node- and link-dimensioned counters and histograms for one cluster.
///
/// # Examples
///
/// ```
/// use dex_net::{MetricsRegistry, NodeId};
/// use dex_sim::SimDuration;
///
/// let m = MetricsRegistry::new(2);
/// m.node(NodeId(1)).incr("faults");
/// m.link(NodeId(0), NodeId(1)).add("bytes", 4096);
/// m.observe("net.send_pool_wait", NodeId(0), SimDuration::from_micros(3));
/// let snap = m.snapshot();
/// assert_eq!(snap.per_node[1], vec![("faults".to_string(), 1)]);
/// ```
pub struct MetricsRegistry {
    nodes: usize,
    per_node: Vec<Counters>,
    /// Row-major `src * nodes + dst`; the diagonal exists but stays
    /// empty (loopback never touches the fabric).
    per_link: Vec<Counters>,
    hists: Mutex<HistTable>,
    /// Maximum number of distinct `(name, node)` histogram keys. A buggy
    /// caller interpolating identifiers into histogram names cannot grow
    /// the registry without bound: past the cap, `observe` counts the
    /// sample into [`HistTable::dropped`] and discards it (mirroring
    /// `SpanBuffer::dropped` in `dex-core`).
    hist_cap: usize,
}

/// Default bound on distinct histogram keys; generous for legitimate
/// metric names, tiny next to an unbounded per-request blowup.
pub const DEFAULT_HIST_CAP: usize = 1024;

struct HistTable {
    map: BTreeMap<(String, u16), Histogram>,
    /// Samples discarded because creating their key would exceed the cap.
    dropped: u64,
    /// When attached (continuous telemetry), every observed sample is
    /// also appended here, keyed like `map`; the sampler drains it at
    /// each window boundary to compute per-window quantiles.
    tap: Option<BTreeMap<(String, u16), Vec<u64>>>,
}

impl MetricsRegistry {
    /// Creates a registry for a cluster of `nodes` nodes, with the
    /// default histogram-cardinality cap ([`DEFAULT_HIST_CAP`]).
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn new(nodes: usize) -> Arc<Self> {
        Self::with_histogram_cap(nodes, DEFAULT_HIST_CAP)
    }

    /// Creates a registry whose histogram table holds at most `cap`
    /// distinct `(name, node)` keys.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn with_histogram_cap(nodes: usize, cap: usize) -> Arc<Self> {
        assert!(nodes > 0, "metrics registry needs at least one node");
        Arc::new(MetricsRegistry {
            nodes,
            per_node: (0..nodes).map(|_| Counters::new()).collect(),
            per_link: (0..nodes * nodes).map(|_| Counters::new()).collect(),
            hists: Mutex::new(HistTable {
                map: BTreeMap::new(),
                dropped: 0,
                tap: None,
            }),
            hist_cap: cap,
        })
    }

    /// Number of nodes the registry covers.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The counter set of one node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the cluster.
    pub fn node(&self, node: NodeId) -> &Counters {
        &self.per_node[node.0 as usize]
    }

    /// The counter set of the directed link `src → dst`.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is outside the cluster.
    pub fn link(&self, src: NodeId, dst: NodeId) -> &Counters {
        &self.per_link[src.0 as usize * self.nodes + dst.0 as usize]
    }

    /// Records one duration sample into the histogram `name` at `node`
    /// (created on first use, subject to the cardinality cap: once the
    /// table holds `hist_cap` distinct keys, samples for *new* keys are
    /// counted into [`MetricsRegistry::histograms_dropped`] and
    /// discarded; existing keys keep recording).
    pub fn observe(&self, name: &str, node: NodeId, d: SimDuration) {
        let hist = {
            let mut t = self.hists.lock();
            let key = (name.to_string(), node.0);
            let hist = match t.map.get(&key) {
                Some(h) => h.clone(),
                None => {
                    if t.map.len() >= self.hist_cap {
                        t.dropped += 1;
                        return;
                    }
                    t.map.entry(key.clone()).or_default().clone()
                }
            };
            if let Some(tap) = t.tap.as_mut() {
                tap.entry(key).or_default().push(d.as_nanos());
            }
            hist
        };
        hist.record(d);
    }

    /// Samples discarded by [`MetricsRegistry::observe`] because their
    /// `(name, node)` key would have exceeded the cardinality cap.
    pub fn histograms_dropped(&self) -> u64 {
        self.hists.lock().dropped
    }

    /// Attaches the window tap: from now on every `observe`d sample is
    /// additionally buffered for [`MetricsRegistry::drain_window_samples`].
    /// Used by the continuous-telemetry sampler; pure bookkeeping, like
    /// the rest of the registry.
    pub fn enable_window_tap(&self) {
        let mut t = self.hists.lock();
        if t.tap.is_none() {
            t.tap = Some(BTreeMap::new());
        }
    }

    /// Takes every sample buffered since the last drain (or since
    /// [`MetricsRegistry::enable_window_tap`]), keyed by `(name, node)`,
    /// values in nanoseconds in recording order. Returns an empty map if
    /// the tap was never enabled.
    pub fn drain_window_samples(&self) -> BTreeMap<(String, u16), Vec<u64>> {
        let mut t = self.hists.lock();
        match t.tap.as_mut() {
            Some(tap) => std::mem::take(tap),
            None => BTreeMap::new(),
        }
    }

    /// A point-in-time copy of every counter and histogram summary.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let summarize = |name: &str, node: u16, h: &Histogram| HistogramSummary {
            name: name.to_string(),
            node,
            count: h.count(),
            stats: (h.count() > 0).then(|| HistogramStats {
                min: h.min(),
                max: h.max(),
                mean: h.mean(),
                p50: h.percentile(50.0),
                p95: h.percentile(95.0),
                p99: h.percentile(99.0),
            }),
        };
        let t = self.hists.lock();
        MetricsSnapshot {
            nodes: self.nodes,
            per_node: self.per_node.iter().map(Counters::snapshot).collect(),
            per_link: (0..self.nodes as u16)
                .flat_map(|src| (0..self.nodes as u16).map(move |dst| (src, dst)))
                .filter_map(|(src, dst)| {
                    let counters = self.link(NodeId(src), NodeId(dst)).snapshot();
                    (!counters.is_empty()).then_some(LinkMetrics { src, dst, counters })
                })
                .collect(),
            histograms: t
                .map
                .iter()
                .map(|((name, node), h)| summarize(name, *node, h))
                .collect(),
            histograms_dropped: t.dropped,
        }
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("nodes", &self.nodes)
            .finish()
    }
}

/// Counters of one directed link that saw traffic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LinkMetrics {
    /// Sending node.
    pub src: u16,
    /// Receiving node.
    pub dst: u16,
    /// Counter snapshot, sorted by name.
    pub counters: Vec<(String, u64)>,
}

/// Summary statistics of one `(name, node)` histogram.
///
/// `stats` is `None` exactly when `count` is zero: an empty histogram and
/// one whose latencies are genuinely zero are distinct states — the old
/// flat representation reported `p50 = 0` for both, which hid missing
/// instrumentation behind a perfect latency.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Histogram name (e.g. `net.send_pool_wait`).
    pub name: String,
    /// The node the samples belong to.
    pub node: u16,
    /// Number of samples.
    pub count: u64,
    /// Summary statistics; present iff at least one sample was recorded.
    pub stats: Option<HistogramStats>,
}

/// The summary statistics of a *non-empty* histogram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramStats {
    /// Smallest sample.
    pub min: SimDuration,
    /// Largest sample.
    pub max: SimDuration,
    /// Arithmetic mean.
    pub mean: SimDuration,
    /// Median over retained samples.
    pub p50: SimDuration,
    /// 95th percentile over retained samples.
    pub p95: SimDuration,
    /// 99th percentile over retained samples.
    pub p99: SimDuration,
}

/// A frozen copy of a registry, safe to inspect after the run ends.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Number of nodes covered.
    pub nodes: usize,
    /// Per-node counter snapshots, indexed by node id.
    pub per_node: Vec<Vec<(String, u64)>>,
    /// Per-link counters for links that saw traffic.
    pub per_link: Vec<LinkMetrics>,
    /// Histogram summaries, sorted by `(name, node)`.
    pub histograms: Vec<HistogramSummary>,
    /// Samples discarded because their key would have exceeded the
    /// registry's histogram-cardinality cap.
    pub histograms_dropped: u64,
}

impl MetricsSnapshot {
    /// Renders the snapshot as an indented text report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("metrics: {} nodes\n", self.nodes));
        for (node, counters) in self.per_node.iter().enumerate() {
            if counters.is_empty() {
                continue;
            }
            out.push_str(&format!("  node {node}\n"));
            for (name, v) in counters {
                out.push_str(&format!("    {name:<28} {v}\n"));
            }
        }
        for link in &self.per_link {
            out.push_str(&format!("  link {} -> {}\n", link.src, link.dst));
            for (name, v) in &link.counters {
                out.push_str(&format!("    {name:<28} {v}\n"));
            }
        }
        for h in &self.histograms {
            match &h.stats {
                Some(s) => out.push_str(&format!(
                    "  hist {}@node{}: n={} mean={} p50={} p95={} p99={} max={}\n",
                    h.name, h.node, h.count, s.mean, s.p50, s.p95, s.p99, s.max
                )),
                None => out.push_str(&format!("  hist {}@node{}: no samples\n", h.name, h.node)),
            }
        }
        if self.histograms_dropped > 0 {
            out.push_str(&format!(
                "  hist cardinality cap hit: {} samples dropped\n",
                self.histograms_dropped
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_dimensioned_by_node_and_link() {
        let m = MetricsRegistry::new(3);
        m.node(NodeId(0)).incr("faults");
        m.node(NodeId(2)).add("faults", 2);
        m.link(NodeId(0), NodeId(2)).add("bytes", 100);
        m.link(NodeId(2), NodeId(0)).add("bytes", 7);
        let snap = m.snapshot();
        assert_eq!(snap.per_node[0], vec![("faults".to_string(), 1)]);
        assert!(snap.per_node[1].is_empty());
        assert_eq!(snap.per_node[2], vec![("faults".to_string(), 2)]);
        assert_eq!(snap.per_link.len(), 2, "only links with traffic");
        assert_eq!(snap.per_link[0].src, 0);
        assert_eq!(snap.per_link[0].dst, 2);
        assert_eq!(snap.per_link[1].counters, vec![("bytes".to_string(), 7)]);
    }

    #[test]
    fn histograms_summarize_per_node() {
        let m = MetricsRegistry::new(2);
        for us in [10u64, 20, 30] {
            m.observe("wait", NodeId(1), SimDuration::from_micros(us));
        }
        let snap = m.snapshot();
        assert_eq!(snap.histograms.len(), 1);
        let h = &snap.histograms[0];
        assert_eq!((h.name.as_str(), h.node, h.count), ("wait", 1, 3));
        let s = h.stats.expect("three samples were recorded");
        assert_eq!(s.mean, SimDuration::from_micros(20));
        assert_eq!(s.p50, SimDuration::from_micros(20));
        let text = snap.render();
        assert!(text.contains("hist wait@node1"), "{text}");
    }

    #[test]
    fn empty_histogram_is_distinct_from_zero_latency() {
        // Regression: the old flat summary reported p50 = 0 both for "no
        // samples" and for genuinely-zero latency. The type now separates
        // them, and so does the rendered report.
        let m = MetricsRegistry::new(1);
        m.observe("instant", NodeId(0), SimDuration::ZERO);
        let snap = m.snapshot();
        let h = &snap.histograms[0];
        assert_eq!(h.count, 1);
        let s = h.stats.expect("a zero-latency sample is still a sample");
        assert_eq!(s.p50, SimDuration::ZERO);
        assert!(snap.render().contains("p50=0ns"), "{}", snap.render());

        let empty = HistogramSummary {
            name: "ghost".to_string(),
            node: 0,
            count: 0,
            stats: None,
        };
        let snap = MetricsSnapshot {
            nodes: 1,
            histograms: vec![empty],
            ..MetricsSnapshot::default()
        };
        let text = snap.render();
        assert!(text.contains("hist ghost@node0: no samples"), "{text}");
        assert!(!text.contains("p50=0ns"), "{text}");
    }

    #[test]
    fn histogram_cardinality_is_capped() {
        let m = MetricsRegistry::with_histogram_cap(1, 2);
        m.observe("a", NodeId(0), SimDuration::from_micros(1));
        m.observe("b", NodeId(0), SimDuration::from_micros(2));
        // Third distinct key: dropped, not created.
        m.observe("c", NodeId(0), SimDuration::from_micros(3));
        m.observe("c", NodeId(0), SimDuration::from_micros(4));
        // Existing keys keep recording past the cap.
        m.observe("a", NodeId(0), SimDuration::from_micros(5));
        assert_eq!(m.histograms_dropped(), 2);
        let snap = m.snapshot();
        assert_eq!(snap.histograms.len(), 2);
        assert_eq!(snap.histograms[0].count, 2, "key `a` kept recording");
        assert_eq!(snap.histograms_dropped, 2);
        assert!(
            snap.render().contains("cardinality cap hit: 2 samples"),
            "{}",
            snap.render()
        );
    }

    #[test]
    fn window_tap_buffers_and_drains() {
        let m = MetricsRegistry::new(2);
        m.observe("wait", NodeId(0), SimDuration::from_micros(1));
        m.enable_window_tap();
        m.observe("wait", NodeId(0), SimDuration::from_micros(2));
        m.observe("wait", NodeId(1), SimDuration::from_micros(3));
        let win = m.drain_window_samples();
        assert_eq!(win.len(), 2, "pre-tap sample not included");
        assert_eq!(win[&("wait".to_string(), 0)], vec![2_000]);
        assert_eq!(win[&("wait".to_string(), 1)], vec![3_000]);
        assert!(m.drain_window_samples().is_empty(), "drain empties the tap");
        m.observe("wait", NodeId(0), SimDuration::from_micros(4));
        assert_eq!(m.drain_window_samples().len(), 1, "tap stays attached");
        // The cumulative histogram saw everything regardless of the tap.
        assert_eq!(m.snapshot().histograms[0].count, 3);
    }
}
