//! Headline-shape regression tests: the qualitative Figure 2 claims that
//! EXPERIMENTS.md reports must keep holding.
//!
//! These run at evaluation scale with small node counts to stay fast; the
//! full sweep lives in `dex-bench` (`cargo run -p dex-bench --bin fig2`).

use dex_apps::{reference_checksum, run_app, AppParams, Variant};

fn speedup(app: &str, nodes: usize, variant: Variant) -> f64 {
    let base = run_app(app, &AppParams::new(1, Variant::Baseline));
    let run = run_app(app, &AppParams::new(nodes, variant));
    assert_eq!(
        run.checksum,
        reference_checksum(app, &run.params),
        "{app} {variant} produced wrong results"
    );
    base.elapsed.as_secs_f64() / run.elapsed.as_secs_f64()
}

#[test]
fn ep_scales_without_optimization() {
    // Paper §V-B: EP scaled linearly in the initial port.
    let s = speedup("EP", 4, Variant::Initial);
    assert!(s > 3.0, "EP initial at 4 nodes: {s:.2}x");
}

#[test]
fn blk_scales_without_optimization() {
    // Paper §V-B: BLK scaled in the initial port.
    let s = speedup("BLK", 4, Variant::Initial);
    assert!(s > 3.0, "BLK initial at 4 nodes: {s:.2}x");
}

#[test]
fn bp_scales_superlinearly_at_two_nodes() {
    // Paper §V-B: BP increased 3.84x from 1 to 2 nodes (bandwidth/cache
    // bound); the reproduction must at least beat linear.
    let s = speedup("BP", 2, Variant::Initial);
    assert!(
        s > 2.0,
        "BP initial at 2 nodes: {s:.2}x (expected superlinear)"
    );
}

#[test]
fn ft_stays_below_single_machine() {
    // Paper §V-C: FT's all-to-all transpose keeps it below 1x even
    // optimized.
    let s = speedup("FT", 4, Variant::Optimized);
    assert!(s < 1.0, "FT optimized at 4 nodes: {s:.2}x (expected < 1)");
}

#[test]
fn bfs_optimization_helps_but_does_not_win() {
    // Paper §V-C: optimization improved BFS, but it stayed below
    // single-machine performance.
    let initial = speedup("BFS", 2, Variant::Initial);
    let optimized = speedup("BFS", 2, Variant::Optimized);
    assert!(
        optimized > initial,
        "optimization should help: {optimized:.2} vs {initial:.2}"
    );
    assert!(optimized < 1.0, "BFS stays below 1x: {optimized:.2}");
}

#[test]
fn kmn_optimization_turns_degradation_into_scaling() {
    // Paper §V-C: "optimizing GRP and KMN allowed them to scale".
    let initial = speedup("KMN", 4, Variant::Initial);
    let optimized = speedup("KMN", 4, Variant::Optimized);
    assert!(initial < 1.2, "KMN initial should not scale: {initial:.2}x");
    assert!(
        optimized > 2.0,
        "KMN optimized should scale: {optimized:.2}x"
    );
}

#[test]
fn grp_optimization_enables_scaling() {
    let initial = speedup("GRP", 4, Variant::Initial);
    let optimized = speedup("GRP", 4, Variant::Optimized);
    assert!(
        optimized > initial + 0.3,
        "GRP optimized {optimized:.2}x vs initial {initial:.2}x"
    );
    assert!(
        optimized > 1.5,
        "GRP optimized should scale: {optimized:.2}x"
    );
}

#[test]
fn bt_optimization_crosses_single_machine() {
    // Paper §V-C: "BT achieved enhanced performance vs. its performance
    // on a single machine".
    let initial = speedup("BT", 4, Variant::Initial);
    let optimized = speedup("BT", 4, Variant::Optimized);
    assert!(initial < 1.1, "BT initial should not scale: {initial:.2}x");
    assert!(
        optimized > 1.2,
        "BT optimized should cross 1x: {optimized:.2}x"
    );
}
