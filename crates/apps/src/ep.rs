//! EP — embarrassingly parallel (NPB).
//!
//! Generates pseudo-random pairs, classifies them into annulus buckets,
//! and reduces per-thread tallies at the end. EP has a single OpenMP
//! parallel region and essentially no sharing, which is why it scaled on
//! DEX without any optimization (§V-B): the only shared state is the
//! per-thread result slot written once at the very end.

use dex_sim::SimRng;

use crate::{migrate_home, migrate_worker, mix, run_cluster, AppParams, AppResult, Scale, Variant};

const BUCKETS: usize = 10;
/// Abstract ops per sample: NPB EP generates a gaussian pair per sample
/// (two uniforms, log, sqrt, squares) — about half a microsecond of real
/// work at the 0.5 ns/op model.
const OPS_PER_SAMPLE: u64 = 1_000;

fn samples(scale: Scale) -> usize {
    match scale {
        Scale::Test => 1 << 16,
        Scale::Evaluation => 1 << 21,
    }
}

/// Classifies deterministic sample `i`: returns `Some(bucket)` when the
/// pair falls inside the unit disk.
fn classify(seed: u64, i: u64) -> Option<usize> {
    let mut rng = SimRng::new(seed ^ i.wrapping_mul(0x9E3779B97F4A7C15));
    let x = rng.gen_f64() * 2.0 - 1.0;
    let y = rng.gen_f64() * 2.0 - 1.0;
    let r2 = x * x + y * y;
    if r2 <= 1.0 {
        Some(((r2 * BUCKETS as f64) as usize).min(BUCKETS - 1))
    } else {
        None
    }
}

fn tally_range(seed: u64, first: u64, last: u64) -> [u64; BUCKETS] {
    let mut q = [0u64; BUCKETS];
    for i in first..last {
        if let Some(b) = classify(seed, i) {
            q[b] += 1;
        }
    }
    q
}

/// Runs EP under the given parameters.
pub fn run(params: &AppParams) -> AppResult {
    let n = samples(params.scale) as u64;
    let threads = params.total_threads();
    let optimized = params.variant == Variant::Optimized;
    let seed = params.seed;

    let mut slots_handle = None;
    let params2 = params.clone();
    let report = run_cluster(params, |p| {
        // Per-thread result slots: written once at the end of the single
        // parallel region. Initial packs them (harmless — one write
        // each); optimized aligns them anyway.
        let slots = if optimized {
            p.alloc_vec_aligned::<u64>(threads * BUCKETS, "thread_results")
        } else {
            p.alloc_vec::<u64>(threads * BUCKETS, "thread_results")
        };
        slots_handle = Some(slots);

        let per_worker = n.div_ceil(threads as u64);
        for w in 0..threads {
            let params = params2.clone();
            p.spawn(move |ctx| {
                migrate_worker(ctx, &params, w);
                ctx.set_site("ep.sample_loop");
                let first = w as u64 * per_worker;
                let last = (first + per_worker).min(n);
                // Chunked so virtual compute time interleaves with other
                // threads, as a real core would.
                let mut q = [0u64; BUCKETS];
                let chunk = 1u64 << 14;
                let mut i = first;
                while i < last {
                    let hi = (i + chunk).min(last);
                    let t = tally_range(seed, i, hi);
                    for (acc, v) in q.iter_mut().zip(t.iter()) {
                        *acc += v;
                    }
                    ctx.compute_ops((hi - i) * OPS_PER_SAMPLE);
                    i = hi;
                }
                ctx.set_site("ep.write_results");
                slots.write_slice(ctx, w * BUCKETS, &q);
                migrate_home(ctx, &params);
            });
        }
    });

    let all = slots_handle.expect("allocated").snapshot(&report);
    let mut totals = [0u64; BUCKETS];
    for w in 0..threads {
        for b in 0..BUCKETS {
            totals[b] += all[w * BUCKETS + b];
        }
    }
    let mut checksum = 0xcbf29ce484222325;
    for t in totals {
        checksum = mix(checksum, t);
    }
    AppResult {
        name: "EP",
        params: params.clone(),
        elapsed: report.virtual_time,
        checksum,
        stats: report.stats,
        report,
    }
}

/// Sequential reference checksum.
pub fn reference_checksum(params: &AppParams) -> u64 {
    let totals = tally_range(params.seed, 0, samples(params.scale) as u64);
    let mut checksum = 0xcbf29ce484222325;
    for t in totals {
        checksum = mix(checksum, t);
    }
    checksum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_is_deterministic() {
        for i in 0..100 {
            assert_eq!(classify(42, i), classify(42, i));
        }
    }

    #[test]
    fn tallies_partition_cleanly() {
        let whole = tally_range(7, 0, 10_000);
        let mut split = [0u64; BUCKETS];
        for start in (0..10_000).step_by(1_237) {
            let part = tally_range(7, start, (start + 1_237).min(10_000));
            for (a, b) in split.iter_mut().zip(part.iter()) {
                *a += b;
            }
        }
        assert_eq!(whole, split);
    }

    #[test]
    fn about_three_quarters_land_inside() {
        let q = tally_range(3, 0, 20_000);
        let inside: u64 = q.iter().sum();
        let ratio = inside as f64 / 20_000.0;
        // π/4 ≈ 0.785.
        assert!((0.76..0.81).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn initial_matches_reference() {
        let params = AppParams::test(2, Variant::Initial);
        assert_eq!(run(&params).checksum, reference_checksum(&params));
    }

    #[test]
    fn scales_with_nodes_even_unoptimized() {
        let one = run(&AppParams::new(1, Variant::Initial));
        let two = run(&AppParams::new(2, Variant::Initial));
        let speedup = one.elapsed.as_secs_f64() / two.elapsed.as_secs_f64();
        assert!(speedup > 1.5, "EP speedup 1→2 nodes: {speedup:.2}");
    }
}
