//! # dex-apps — the eight evaluation applications of the DEX paper
//!
//! Rust ports, against the DEX API, of the applications evaluated in §V:
//!
//! | module | paper name | source | pattern |
//! |---|---|---|---|
//! | [`grp`] | GRP | Phoenix string match | partitioned scan + global match counters |
//! | [`kmn`] | KMN | Phoenix k-means | iterative clustering with shared centroids |
//! | [`bt`]  | BT  | NPB (OpenMP, 15 regions) | fork-join regions, shared loop params |
//! | [`ep`]  | EP  | NPB (OpenMP, 1 region) | embarrassingly parallel + reduction |
//! | [`ft`]  | FT  | NPB (OpenMP, 7 regions) | all-to-all transpose every iteration |
//! | [`blk`] | BLK | PARSEC blackscholes | read-only inputs, disjoint outputs |
//! | [`bfs`] | BFS | Polymer | frontier graph traversal, scattered writes |
//! | [`bp`]  | BP  | Polymer | bandwidth-bound partitioned sweeps |
//!
//! Each application runs in three [`Variant`]s:
//!
//! * [`Variant::Baseline`] — the unmodified single-machine program (no
//!   migration calls); Figure 2's normalization point.
//! * [`Variant::Initial`] — the paper's §V-A conversion: thread-migration
//!   calls inserted blindly, data layout untouched — including the
//!   false-sharing hazards the paper documents (packed thread arguments,
//!   global counters updated per event, parameters co-located with
//!   mutable globals).
//! * [`Variant::Optimized`] — the §V-C optimizations: page-aligned
//!   per-thread data (`posix_memalign`), locally-staged updates merged
//!   once per iteration, read-only parameters on their own replicable
//!   pages, explicit argument passing instead of parent-stack reads.
//!
//! Every run returns a checksum that is verified against a plain
//! sequential Rust computation ([`reference_checksum`]), so the protocol's
//! data correctness is validated by the same code that measures it.

#![warn(missing_docs)]

pub mod bfs;
pub mod blk;
pub mod bp;
pub mod bt;
pub mod ep;
pub mod ft;
pub mod grp;
pub mod kmn;
pub mod workloads;

use dex_core::{Cluster, ClusterConfig, DexStats, NodeId, RunReport, ThreadCtx};
use dex_sim::SimDuration;

/// Which version of an application to run (see crate docs).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Variant {
    /// Unmodified single-machine program (runs on node 0 only).
    Baseline,
    /// Blind conversion: migration calls only (§V-A).
    Initial,
    /// Conversion plus the false-sharing optimizations (§V-C).
    Optimized,
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Variant::Baseline => write!(f, "baseline"),
            Variant::Initial => write!(f, "initial"),
            Variant::Optimized => write!(f, "optimized"),
        }
    }
}

/// Problem-size selection: `Test` sizes keep unit tests fast; `Evaluation`
/// sizes drive the figure/table harnesses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// Small inputs for unit and property tests.
    Test,
    /// The sizes used to regenerate the paper's figures (scaled from the
    /// paper's inputs so a DES run finishes in seconds).
    Evaluation,
}

/// Parameters of one application run.
#[derive(Clone, Debug)]
pub struct AppParams {
    /// Number of nodes used.
    pub nodes: usize,
    /// Worker threads per node (the paper uses 8 to avoid hyper-threading
    /// effects).
    pub threads_per_node: usize,
    /// Which variant to run.
    pub variant: Variant,
    /// Problem size.
    pub scale: Scale,
    /// Workload seed.
    pub seed: u64,
    /// Collect a page-fault trace.
    pub trace: bool,
    /// Record synchronization/access events for `dex-check races`.
    pub race: bool,
}

impl AppParams {
    /// Conventional parameters: `nodes` nodes, 8 threads each, evaluation
    /// scale.
    pub fn new(nodes: usize, variant: Variant) -> Self {
        AppParams {
            nodes,
            threads_per_node: 8,
            variant,
            scale: Scale::Evaluation,
            seed: 42,
            trace: false,
            race: false,
        }
    }

    /// Small-scale parameters for tests.
    pub fn test(nodes: usize, variant: Variant) -> Self {
        AppParams {
            nodes,
            threads_per_node: 4,
            variant,
            scale: Scale::Test,
            seed: 42,
            trace: false,
            race: false,
        }
    }

    /// Enables page-fault tracing.
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Enables synchronization/access event recording (race detection).
    pub fn with_race_detection(mut self) -> Self {
        self.race = true;
        self
    }

    /// Total worker threads (baseline runs use a single node's worth).
    pub fn total_threads(&self) -> usize {
        match self.variant {
            Variant::Baseline => self.threads_per_node,
            _ => self.nodes * self.threads_per_node,
        }
    }

    /// The node worker `i` executes on: workers are distributed in blocks,
    /// so partitions align with nodes. Baseline workers stay home.
    pub fn node_of(&self, worker: usize) -> NodeId {
        match self.variant {
            Variant::Baseline => NodeId(0),
            _ => NodeId((worker / self.threads_per_node) as u16),
        }
    }

    /// Builds the cluster configuration for this run.
    pub fn cluster_config(&self) -> ClusterConfig {
        let nodes = match self.variant {
            Variant::Baseline => 1,
            _ => self.nodes,
        };
        let mut config = ClusterConfig::new(nodes);
        if self.trace {
            config = config.with_trace();
        }
        if self.race {
            config = config.with_race_detection();
        }
        config
    }
}

/// The outcome of one application run.
#[derive(Debug)]
pub struct AppResult {
    /// Application short name (paper acronym).
    pub name: &'static str,
    /// The parameters used.
    pub params: AppParams,
    /// Virtual time the run took.
    pub elapsed: SimDuration,
    /// Result checksum (verify against [`reference_checksum`]).
    pub checksum: u64,
    /// Protocol statistics.
    pub stats: DexStats,
    /// The full run report (migration samples, fault histogram, trace).
    pub report: RunReport,
}

/// All eight application identifiers, in the paper's presentation order.
pub const ALL_APPS: [&str; 8] = ["GRP", "KMN", "BT", "EP", "FT", "BLK", "BFS", "BP"];

/// Runs the named application.
///
/// # Panics
///
/// Panics on an unknown name (use entries of [`ALL_APPS`]).
pub fn run_app(name: &str, params: &AppParams) -> AppResult {
    match name {
        "GRP" => grp::run(params),
        "KMN" => kmn::run(params),
        "BT" => bt::run(params),
        "EP" => ep::run(params),
        "FT" => ft::run(params),
        "BLK" => blk::run(params),
        "BFS" => bfs::run(params),
        "BP" => bp::run(params),
        other => panic!("unknown application {other:?} (expected one of {ALL_APPS:?})"),
    }
}

/// Sequential ground-truth checksum for the named application at the given
/// scale and seed — computed without the simulator.
///
/// # Panics
///
/// Panics on an unknown name.
pub fn reference_checksum(name: &str, params: &AppParams) -> u64 {
    match name {
        "GRP" => grp::reference_checksum(params),
        "KMN" => kmn::reference_checksum(params),
        "BT" => bt::reference_checksum(params),
        "EP" => ep::reference_checksum(params),
        "FT" => ft::reference_checksum(params),
        "BLK" => blk::reference_checksum(params),
        "BFS" => bfs::reference_checksum(params),
        "BP" => bp::reference_checksum(params),
        other => panic!("unknown application {other:?}"),
    }
}

/// Mixes a `u64` into a running checksum (FNV-ish, order-sensitive).
pub fn mix(hash: u64, value: u64) -> u64 {
    (hash ^ value).wrapping_mul(0x100000001b3)
}

/// Quantizes an `f64` for checksumming (stable across evaluation orders
/// that stay deterministic, tolerant of representation noise).
pub fn quantize(value: f64) -> u64 {
    (value * 1e6).round() as i64 as u64
}

std::thread_local! {
    static CONFIG_OVERRIDE: std::cell::RefCell<Option<ClusterConfig>> =
        const { std::cell::RefCell::new(None) };
}

/// Runs the named application with a custom cluster configuration (e.g. a
/// different fabric generation) instead of the default built from
/// `params`. Used by the network-generation study.
///
/// # Panics
///
/// Panics on an unknown name.
pub fn run_app_with_config(name: &str, params: &AppParams, config: ClusterConfig) -> AppResult {
    CONFIG_OVERRIDE.with(|c| *c.borrow_mut() = Some(config));
    let result = run_app(name, params);
    CONFIG_OVERRIDE.with(|c| *c.borrow_mut() = None);
    result
}

pub(crate) fn run_cluster<F>(params: &AppParams, setup: F) -> RunReport
where
    F: FnOnce(&dex_core::DexProcess<'_>),
{
    let config = CONFIG_OVERRIDE
        .with(|c| c.borrow_mut().take())
        .unwrap_or_else(|| params.cluster_config());
    Cluster::new(config).run(setup)
}

/// Migrates a worker to its assigned node per the variant (no-op for
/// baseline), mirroring the one inserted line of §V-A.
pub(crate) fn migrate_worker(ctx: &ThreadCtx<'_>, params: &AppParams, worker: usize) {
    if params.variant != Variant::Baseline {
        ctx.migrate(params.node_of(worker)).expect("node exists");
    }
}

/// The matching backward migration at the end of the parallel region.
pub(crate) fn migrate_home(ctx: &ThreadCtx<'_>, params: &AppParams) {
    if params.variant != Variant::Baseline {
        ctx.migrate_back().expect("origin exists");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_assignment_is_blocked() {
        let p = AppParams::new(4, Variant::Initial);
        assert_eq!(p.total_threads(), 32);
        assert_eq!(p.node_of(0), NodeId(0));
        assert_eq!(p.node_of(7), NodeId(0));
        assert_eq!(p.node_of(8), NodeId(1));
        assert_eq!(p.node_of(31), NodeId(3));
    }

    #[test]
    fn baseline_stays_on_one_node() {
        let p = AppParams::new(4, Variant::Baseline);
        assert_eq!(p.total_threads(), 8);
        assert_eq!(p.node_of(7), NodeId(0));
        assert_eq!(p.cluster_config().nodes, 1);
    }

    #[test]
    fn mix_is_order_sensitive() {
        let a = mix(mix(0xcbf29ce484222325, 1), 2);
        let b = mix(mix(0xcbf29ce484222325, 2), 1);
        assert_ne!(a, b);
    }

    #[test]
    fn quantize_is_stable() {
        assert_eq!(quantize(1.25), quantize(1.25));
        assert_ne!(quantize(1.25), quantize(1.2500019));
        assert_eq!(quantize(0.0), 0);
    }
}
