//! Synthetic workload generators.
//!
//! The paper's inputs (8 GB of Wikipedia text, a 67 M-vertex R-MAT graph,
//! PARSEC's `native` option batch, NPB class-C grids) are replaced by
//! seeded generators that preserve the *access pattern* at a size a
//! discrete-event run can finish in seconds. Everything is deterministic
//! in the seed.

use dex_sim::SimRng;

/// Generated text corpus for the string-match application.
#[derive(Clone, Debug)]
pub struct TextCorpus {
    /// The text bytes (lowercase letters and spaces, with keys embedded).
    pub bytes: Vec<u8>,
    /// The keys to search for (7–10 bytes each, like the paper's).
    pub keys: Vec<Vec<u8>>,
}

/// Generates `len` bytes of text with the four search keys embedded at a
/// controlled rate (about one occurrence per kilobyte).
pub fn text_corpus(seed: u64, len: usize) -> TextCorpus {
    let keys: Vec<Vec<u8>> = ["morpheus", "trinity", "nebuchad", "zionward"]
        .iter()
        .map(|k| k.as_bytes().to_vec())
        .collect();
    let mut rng = SimRng::new(seed ^ 0x7e87);
    let mut bytes = Vec::with_capacity(len);
    while bytes.len() < len {
        if rng.gen_bool(0.006) {
            let key = &keys[rng.gen_range(0..keys.len() as u64) as usize];
            if bytes.len() + key.len() <= len {
                bytes.extend_from_slice(key);
                continue;
            }
        }
        let c = match rng.gen_range(0..8) {
            0 => b' ',
            _ => b'a' + (rng.gen_range(0..26) as u8),
        };
        bytes.push(c);
    }
    bytes.truncate(len);
    TextCorpus { bytes, keys }
}

/// Counts occurrences of each key in `text` (sequential reference).
pub fn count_keys(text: &[u8], keys: &[Vec<u8>]) -> Vec<u64> {
    keys.iter()
        .map(|key| {
            if key.is_empty() || key.len() > text.len() {
                return 0;
            }
            let mut count = 0u64;
            for window in text.windows(key.len()) {
                if window == key.as_slice() {
                    count += 1;
                }
            }
            count
        })
        .collect()
}

/// Gaussian point clusters for k-means: `n` points in 3-D around `k`
/// well-separated centers.
pub fn gaussian_points(seed: u64, n: usize, k: usize) -> Vec<[f64; 3]> {
    let mut rng = SimRng::new(seed ^ 0x4b4d);
    let centers: Vec<[f64; 3]> = (0..k)
        .map(|_| std::array::from_fn(|_| rng.gen_f64() * 1000.0))
        .collect();
    (0..n)
        .map(|_| {
            let c = &centers[rng.gen_range(0..k as u64) as usize];
            std::array::from_fn(|d| c[d] + rng.gen_normal(0.0, 15.0))
        })
        .collect()
}

/// A graph in compressed-sparse-row form.
#[derive(Clone, Debug)]
pub struct Csr {
    /// `offsets[v]..offsets[v+1]` indexes `targets` for vertex `v`.
    pub offsets: Vec<u32>,
    /// Edge targets.
    pub targets: Vec<u32>,
}

impl Csr {
    /// Number of vertices.
    pub fn vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of (directed) edges.
    pub fn edges(&self) -> usize {
        self.targets.len()
    }

    /// The out-neighbors of `v`.
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.targets[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }
}

/// Generates an R-MAT graph with the Graph500 parameters (α = 0.57,
/// β = γ = 0.19) used by the paper's Ligra generator, symmetrized and
/// deduplicated, as CSR.
///
/// # Panics
///
/// Panics unless `vertices` is a power of two (R-MAT recursion).
pub fn rmat_graph(seed: u64, vertices: usize, edges: usize) -> Csr {
    assert!(
        vertices.is_power_of_two(),
        "R-MAT needs a power-of-two vertex count"
    );
    let (a, b, c) = (0.57, 0.19, 0.19);
    let mut rng = SimRng::new(seed ^ 0x524d);
    let levels = vertices.trailing_zeros();
    let mut edge_list: Vec<(u32, u32)> = Vec::with_capacity(edges * 2);
    for _ in 0..edges {
        let (mut u, mut v) = (0usize, 0usize);
        for _ in 0..levels {
            let r = rng.gen_f64();
            let (ubit, vbit) = if r < a {
                (0, 0)
            } else if r < a + b {
                (0, 1)
            } else if r < a + b + c {
                (1, 0)
            } else {
                (1, 1)
            };
            u = (u << 1) | ubit;
            v = (v << 1) | vbit;
        }
        if u != v {
            edge_list.push((u as u32, v as u32));
            edge_list.push((v as u32, u as u32)); // symmetrize
        }
    }
    edge_list.sort_unstable();
    edge_list.dedup();

    let mut offsets = vec![0u32; vertices + 1];
    for &(u, _) in &edge_list {
        offsets[u as usize + 1] += 1;
    }
    for i in 1..offsets.len() {
        offsets[i] += offsets[i - 1];
    }
    let targets = edge_list.iter().map(|&(_, v)| v).collect();
    Csr { offsets, targets }
}

/// One Black-Scholes option contract.
#[derive(Clone, Copy, Debug)]
pub struct OptionContract {
    /// Spot price.
    pub spot: f64,
    /// Strike price.
    pub strike: f64,
    /// Risk-free rate.
    pub rate: f64,
    /// Volatility.
    pub volatility: f64,
    /// Time to maturity in years.
    pub expiry: f64,
    /// Call (true) or put.
    pub call: bool,
}

/// Generates `n` option contracts with PARSEC-like parameter ranges.
pub fn option_batch(seed: u64, n: usize) -> Vec<OptionContract> {
    let mut rng = SimRng::new(seed ^ 0x424c);
    (0..n)
        .map(|_| OptionContract {
            spot: 20.0 + rng.gen_f64() * 80.0,
            strike: 20.0 + rng.gen_f64() * 80.0,
            rate: 0.01 + rng.gen_f64() * 0.09,
            volatility: 0.05 + rng.gen_f64() * 0.55,
            expiry: 0.1 + rng.gen_f64() * 2.0,
            call: rng.gen_bool(0.5),
        })
        .collect()
}

/// Black–Scholes closed-form price (the PARSEC kernel, sequential
/// reference).
pub fn black_scholes(option: &OptionContract) -> f64 {
    let OptionContract {
        spot: s,
        strike: k,
        rate: r,
        volatility: v,
        expiry: t,
        call,
    } = *option;
    let sqrt_t = t.sqrt();
    let d1 = ((s / k).ln() + (r + v * v / 2.0) * t) / (v * sqrt_t);
    let d2 = d1 - v * sqrt_t;
    let price_call = s * cnd(d1) - k * (-r * t).exp() * cnd(d2);
    if call {
        price_call
    } else {
        // Put-call parity.
        price_call - s + k * (-r * t).exp()
    }
}

/// Cumulative normal distribution (Abramowitz–Stegun polynomial, the same
/// approximation PARSEC ships).
fn cnd(x: f64) -> f64 {
    let neg = x < 0.0;
    let x = x.abs();
    let k = 1.0 / (1.0 + 0.2316419 * x);
    let poly = k
        * (0.319381530
            + k * (-0.356563782 + k * (1.781477937 + k * (-1.821255978 + k * 1.330274429))));
    let w = 1.0 - (1.0 / (2.0 * std::f64::consts::PI).sqrt()) * (-x * x / 2.0).exp() * poly;
    if neg {
        1.0 - w
    } else {
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_corpus_is_deterministic_and_sized() {
        let a = text_corpus(7, 10_000);
        let b = text_corpus(7, 10_000);
        assert_eq!(a.bytes, b.bytes);
        assert_eq!(a.bytes.len(), 10_000);
        assert_eq!(a.keys.len(), 4);
    }

    #[test]
    fn text_corpus_embeds_keys() {
        let corpus = text_corpus(7, 200_000);
        let counts = count_keys(&corpus.bytes, &corpus.keys);
        let total: u64 = counts.iter().sum();
        assert!(total > 20, "keys should occur: {counts:?}");
    }

    #[test]
    fn count_keys_matches_manual() {
        let text = b"abcXabcXXabc".to_vec();
        let keys = vec![b"abc".to_vec(), b"XX".to_vec(), b"zz".to_vec()];
        assert_eq!(count_keys(&text, &keys), vec![3, 1, 0]);
    }

    #[test]
    fn gaussian_points_cluster_near_centers() {
        let pts = gaussian_points(3, 1_000, 4);
        assert_eq!(pts.len(), 1_000);
        for p in &pts {
            for d in p {
                assert!((-200.0..1400.0).contains(d), "point {p:?}");
            }
        }
    }

    #[test]
    fn rmat_graph_is_valid_csr() {
        let g = rmat_graph(5, 256, 1024);
        assert_eq!(g.vertices(), 256);
        assert!(g.edges() > 0);
        assert_eq!(*g.offsets.last().unwrap() as usize, g.targets.len());
        for v in 0..g.vertices() {
            for &t in g.neighbors(v) {
                assert!((t as usize) < g.vertices());
                // Symmetry: the reverse edge exists.
                assert!(
                    g.neighbors(t as usize).contains(&(v as u32)),
                    "missing reverse edge {t}->{v}"
                );
            }
        }
    }

    #[test]
    fn rmat_is_skewed() {
        // R-MAT with Graph500 parameters concentrates edges on low ids.
        let g = rmat_graph(5, 1024, 8192);
        let low: usize = (0..256).map(|v| g.neighbors(v).len()).sum();
        let high: usize = (768..1024).map(|v| g.neighbors(v).len()).sum();
        assert!(low > high * 2, "low {low} vs high {high}");
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn rmat_requires_power_of_two() {
        let _ = rmat_graph(5, 100, 200);
    }

    #[test]
    fn black_scholes_sane_prices() {
        let call = OptionContract {
            spot: 100.0,
            strike: 100.0,
            rate: 0.05,
            volatility: 0.2,
            expiry: 1.0,
            call: true,
        };
        let price = black_scholes(&call);
        // Known value ~10.45 for these canonical parameters.
        assert!((10.0..11.0).contains(&price), "price {price}");
        let put = OptionContract {
            call: false,
            ..call
        };
        let put_price = black_scholes(&put);
        // Put-call parity: C - P = S - K e^{-rT}.
        let parity = price - put_price;
        let expected = 100.0 - 100.0 * (-0.05f64).exp();
        assert!((parity - expected).abs() < 1e-9);
    }

    #[test]
    fn option_batch_in_ranges() {
        for o in option_batch(11, 500) {
            assert!((20.0..=100.0).contains(&o.spot));
            assert!((0.05..=0.6).contains(&o.volatility));
            assert!(o.expiry > 0.0);
        }
    }
}
