//! KMN — k-means clustering (Phoenix-style).
//!
//! Finds `k` centers of a 3-D point cloud by iterating assignment and
//! centroid-update steps. The paper's conversion found two hazards: the
//! *initial* port updates the global centroid accumulators and the global
//! convergence flag from every thread throughout the iteration, and packs
//! thread state onto shared pages; the *optimized* port stages its sums
//! locally and merges once per thread per iteration (§V-C).
//!
//! Accumulators use fixed-point integers so the reduction is
//! order-independent — the distributed result is bit-identical to the
//! sequential reference.

use crate::workloads::gaussian_points;
use crate::{
    migrate_home, migrate_worker, mix, quantize, run_cluster, AppParams, AppResult, Scale, Variant,
};

const FIXED: f64 = 1e6;

/// Abstract ops per point per iteration. The paper clusters into 100
/// centers; the reproduction computes 16 centers for the checksum but
/// charges distance evaluation at the paper's k=100 rate (100 centers ×
/// 3 dims × ~4 ops).
const OPS_PER_POINT: u64 = 1_200;

struct Dims {
    points: usize,
    k: usize,
    iters: usize,
    chunk: usize,
}

fn dims(scale: Scale) -> Dims {
    match scale {
        Scale::Test => Dims {
            points: 2_048,
            k: 8,
            iters: 3,
            chunk: 256,
        },
        Scale::Evaluation => Dims {
            points: 1 << 18,
            k: 16,
            iters: 3,
            chunk: 2_048,
        },
    }
}

fn nearest(point: &[f64; 3], centroids: &[[f64; 3]]) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (i, c) in centroids.iter().enumerate() {
        let d = (0..3).map(|j| (point[j] - c[j]) * (point[j] - c[j])).sum();
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

fn initial_centroids(points: &[[f64; 3]], k: usize) -> Vec<[f64; 3]> {
    // First k points, like the Phoenix implementation.
    points.iter().take(k).copied().collect()
}

fn recompute(sums: &[[i64; 3]], counts: &[i64], old: &[[f64; 3]]) -> Vec<[f64; 3]> {
    old.iter()
        .enumerate()
        .map(|(c, prev)| {
            if counts[c] == 0 {
                *prev
            } else {
                std::array::from_fn(|d| sums[c][d] as f64 / FIXED / counts[c] as f64)
            }
        })
        .collect()
}

/// Runs KMN under the given parameters.
pub fn run(params: &AppParams) -> AppResult {
    let d = dims(params.scale);
    let points = gaussian_points(params.seed, d.points, d.k);
    let threads = params.total_threads();
    let optimized = params.variant == Variant::Optimized;
    let k = d.k;

    let mut centroid_handle = None;
    let params2 = params.clone();
    let report = run_cluster(params, |p| {
        let point_vec = p.alloc_vec::<[f64; 3]>(d.points, "points");
        point_vec.init(p, &points);

        let centroids = p.alloc_vec_aligned::<[f64; 3]>(k, "centroids");
        centroids.init(p, &initial_centroids(&points, k));
        centroid_handle = Some(centroids);

        // Accumulators: sums are fixed-point to keep the reduction
        // order-independent. Initial: packed together with the changed
        // flag (one hot page). Optimized: page-aligned, merged once per
        // thread per iteration.
        let (sums, counts) = if optimized {
            (
                p.alloc_vec_aligned::<[u64; 3]>(k, "centroid_sums"),
                p.alloc_vec_aligned::<u64>(k, "centroid_counts"),
            )
        } else {
            (
                p.alloc_vec::<[u64; 3]>(k, "centroid_sums"),
                p.alloc_vec::<u64>(k, "centroid_counts"),
            )
        };
        let changed_flag = if optimized {
            p.alloc_cell_aligned::<u32>(0, "changed_flag")
        } else {
            p.alloc_cell_tagged::<u32>(0, "changed_flag")
        };
        let assignments = if optimized {
            p.alloc_vec_aligned::<u32>(d.points, "assignments")
        } else {
            p.alloc_vec::<u32>(d.points, "assignments")
        };
        assignments.init(p, &vec![u32::MAX; d.points]);

        let barrier = p.new_barrier(threads as u32, "iteration_barrier");
        let merge_lock = p.new_mutex("merge_lock");
        let per_worker = d.points.div_ceil(threads);

        for w in 0..threads {
            let params = params2.clone();
            p.spawn(move |ctx| {
                migrate_worker(ctx, &params, w);
                let first = w * per_worker;
                let last = (first + per_worker).min(d.points);
                // The original updates the shared clusters as it goes
                // (small batches); the optimized port restructures the
                // loop to stage a whole partition pass locally.
                let chunk = if optimized { d.chunk } else { d.chunk / 128 };
                let mut cbuf = vec![[0f64; 3]; k];
                let mut pbuf = vec![[0f64; 3]; chunk];
                let mut abuf = vec![0u32; chunk];

                for _iter in 0..d.iters {
                    ctx.set_site("kmn.read_centroids");
                    centroids.read_slice(ctx, 0, &mut cbuf);
                    let mut local_sums = vec![[0i64; 3]; k];
                    let mut local_counts = vec![0i64; k];
                    let mut local_changed = false;

                    let mut i = first;
                    while i < last {
                        let n = chunk.min(last - i);
                        ctx.set_site("kmn.assign_points");
                        point_vec.read_slice(ctx, i, &mut pbuf[..n]);
                        assignments.read_slice(ctx, i, &mut abuf[..n]);
                        ctx.compute_ops(n as u64 * OPS_PER_POINT);
                        let mut chunk_changed = false;
                        for j in 0..n {
                            let c = nearest(&pbuf[j], &cbuf) as u32;
                            if abuf[j] != c {
                                chunk_changed = true;
                                abuf[j] = c;
                            }
                            for dim in 0..3 {
                                local_sums[c as usize][dim] +=
                                    (pbuf[j][dim] * FIXED).round() as i64;
                            }
                            local_counts[c as usize] += 1;
                        }
                        assignments.write_slice(ctx, i, &abuf[..n]);
                        local_changed |= chunk_changed;

                        if !optimized {
                            // The original implementation merges into the
                            // shared accumulators (atomically, as the
                            // Phoenix code does) and pokes the global flag
                            // as it goes — every chunk, from every node.
                            ctx.set_site("kmn.global_accumulate");
                            for c in 0..k {
                                if local_counts[c] != 0 {
                                    let add = local_sums[c];
                                    ctx.rmw_bytes(sums.addr_of(c), 24, |b| {
                                        for (dim, delta) in add.iter().enumerate() {
                                            let lo = dim * 8;
                                            let cur = u64::from_le_bytes(
                                                b[lo..lo + 8].try_into().expect("8 bytes"),
                                            );
                                            b[lo..lo + 8].copy_from_slice(
                                                &cur.wrapping_add(*delta as u64).to_le_bytes(),
                                            );
                                        }
                                    });
                                    let addn = local_counts[c] as u64;
                                    ctx.rmw_bytes(counts.addr_of(c), 8, |b| {
                                        let cur =
                                            u64::from_le_bytes(b.try_into().expect("8 bytes"));
                                        b.copy_from_slice(&cur.wrapping_add(addn).to_le_bytes());
                                    });
                                    local_sums[c] = [0; 3];
                                    local_counts[c] = 0;
                                }
                            }
                            // "Rather than blindly checking and setting
                            // the flag" (§IV-C) — the original does
                            // exactly that, every batch.
                            let _ = changed_flag.get(ctx);
                            changed_flag.set(ctx, if chunk_changed { 1 } else { 0 });
                        }
                        i += n;
                    }

                    if optimized {
                        // Stage locally, merge once per thread.
                        ctx.set_site("kmn.merge_once");
                        merge_lock.lock(ctx);
                        for c in 0..k {
                            if local_counts[c] != 0 {
                                let mut cur = sums.get(ctx, c);
                                for dim in 0..3 {
                                    cur[dim] = cur[dim].wrapping_add(local_sums[c][dim] as u64);
                                }
                                sums.set(ctx, c, cur);
                                counts.set(
                                    ctx,
                                    c,
                                    counts.get(ctx, c).wrapping_add(local_counts[c] as u64),
                                );
                            }
                        }
                        if local_changed {
                            changed_flag.set(ctx, 1);
                        }
                        merge_lock.unlock(ctx);
                    }

                    barrier.wait(ctx);
                    if w == 0 {
                        // Serial section: recompute centroids, reset
                        // accumulators (the original's main-loop tail).
                        ctx.set_site("kmn.recompute_centroids");
                        let mut s = vec![[0u64; 3]; k];
                        let mut n = vec![0u64; k];
                        sums.read_slice(ctx, 0, &mut s);
                        counts.read_slice(ctx, 0, &mut n);
                        let si: Vec<[i64; 3]> = s
                            .iter()
                            .map(|a| std::array::from_fn(|d| a[d] as i64))
                            .collect();
                        let ni: Vec<i64> = n.iter().map(|v| *v as i64).collect();
                        let new_centroids = recompute(&si, &ni, &cbuf);
                        centroids.write_slice(ctx, 0, &new_centroids);
                        sums.write_slice(ctx, 0, &vec![[0u64; 3]; k]);
                        counts.write_slice(ctx, 0, &vec![0u64; k]);
                        changed_flag.set(ctx, 0);
                        ctx.compute_ops((k * 20) as u64);
                    }
                    barrier.wait(ctx);
                }
                migrate_home(ctx, &params);
            });
        }
    });

    let finals = centroid_handle.expect("allocated").snapshot(&report);
    let mut checksum = 0xcbf29ce484222325;
    for c in &finals {
        for dim in c {
            checksum = mix(checksum, quantize(*dim));
        }
    }
    AppResult {
        name: "KMN",
        params: params.clone(),
        elapsed: report.virtual_time,
        checksum,
        stats: report.stats,
        report,
    }
}

/// Sequential reference checksum (same fixed-point reduction).
pub fn reference_checksum(params: &AppParams) -> u64 {
    let d = dims(params.scale);
    let points = gaussian_points(params.seed, d.points, d.k);
    let mut centroids = initial_centroids(&points, d.k);
    for _ in 0..d.iters {
        let mut sums = vec![[0i64; 3]; d.k];
        let mut counts = vec![0i64; d.k];
        for p in &points {
            let c = nearest(p, &centroids);
            for dim in 0..3 {
                sums[c][dim] += (p[dim] * FIXED).round() as i64;
            }
            counts[c] += 1;
        }
        centroids = recompute(&sums, &counts, &centroids);
    }
    let mut checksum = 0xcbf29ce484222325;
    for c in &centroids {
        for dim in c {
            checksum = mix(checksum, quantize(*dim));
        }
    }
    checksum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_picks_closest_centroid() {
        let centroids = vec![[0.0, 0.0, 0.0], [10.0, 0.0, 0.0]];
        assert_eq!(nearest(&[1.0, 1.0, 0.0], &centroids), 0);
        assert_eq!(nearest(&[9.0, 1.0, 0.0], &centroids), 1);
    }

    #[test]
    fn recompute_keeps_empty_clusters() {
        let old = vec![[5.0, 5.0, 5.0]];
        let updated = recompute(&[[0; 3]], &[0], &old);
        assert_eq!(updated, old);
    }

    #[test]
    fn initial_matches_reference() {
        let params = AppParams::test(2, Variant::Initial);
        assert_eq!(run(&params).checksum, reference_checksum(&params));
    }

    #[test]
    fn optimized_matches_reference() {
        let params = AppParams::test(2, Variant::Optimized);
        assert_eq!(run(&params).checksum, reference_checksum(&params));
    }

    #[test]
    fn optimized_is_faster_distributed() {
        let mut ip = AppParams::new(2, Variant::Initial);
        ip.threads_per_node = 4;
        let mut op = AppParams::new(2, Variant::Optimized);
        op.threads_per_node = 4;
        let initial = run(&ip);
        let optimized = run(&op);
        assert!(
            optimized.elapsed < initial.elapsed,
            "optimized {} vs initial {}",
            optimized.elapsed,
            initial.elapsed
        );
    }
}
