//! BT — block tri-diagonal solver (NPB, OpenMP with 15 parallel regions).
//!
//! BT executes many parallel regions per timestep. The paper's conversion
//! triggers migration around each OpenMP region, and its profiling found
//! two hazards specific to BT (§V-C):
//!
//! * *loop-range parameters*: read-only after setup, but co-located on the
//!   same page as frequently-updated globals — every serial-section write
//!   invalidates the parameter page on all nodes, so every thread
//!   re-faults it at every region;
//! * *parent-stack reads*: children read per-region values from the
//!   parent's stack page, which the parent keeps writing.
//!
//! The optimized port moves the read-only parameters to their own
//! replicable pages and passes region arguments explicitly.
//!
//! Workers are forked (and migrated) once per timestep and run the
//! regions barrier-separated — at the reproduction's reduced region
//! granularity, per-region re-migration would be pure overhead
//! (DESIGN.md documents this deviation).

use crate::{migrate_home, migrate_worker, mix, run_cluster, AppParams, AppResult, Scale, Variant};

/// Abstract ops per grid element per region (block tri-diagonal solves
/// do dozens of flops per cell).
const OPS_PER_ELEMENT: u64 = 200;

struct Dims {
    rows: usize,
    cols: usize,
    iters: usize,
    regions: usize,
}

fn dims(scale: Scale) -> Dims {
    match scale {
        Scale::Test => Dims {
            rows: 64,
            cols: 64,
            iters: 2,
            regions: 3,
        },
        Scale::Evaluation => Dims {
            rows: 2048,
            cols: 128,
            iters: 2,
            regions: 5,
        },
    }
}

fn initial_grid(seed: u64, n: usize) -> Vec<u64> {
    let mut rng = dex_sim::SimRng::new(seed ^ 0x4254);
    (0..n).map(|_| rng.next_u64()).collect()
}

/// Per-region parameter (the loop-range constants): pure function of
/// (iteration, region) so every variant computes identical results.
fn region_param(iter: usize, region: usize) -> u64 {
    (iter as u64) << 32 | region as u64
}

fn transform(v: u64, param: u64) -> u64 {
    v.wrapping_add(param)
        .wrapping_mul(0x2545F4914F6CDD1D)
        .rotate_left(23)
}

/// Runs BT under the given parameters.
pub fn run(params: &AppParams) -> AppResult {
    let d = dims(params.scale);
    let n = d.rows * d.cols;
    let grid0 = initial_grid(params.seed, n);
    let threads = params.total_threads();
    let optimized = params.variant == Variant::Optimized;

    let mut grid_handle = None;
    let params2 = params.clone();
    let report = run_cluster(params, |p| {
        let grid = if optimized {
            p.alloc_vec_aligned::<u64>(n, "grid")
        } else {
            p.alloc_vec::<u64>(n, "grid")
        };
        grid.init(p, &grid0);
        grid_handle = Some(grid);

        // Loop-range parameters, one slot per region. Initial: packed on
        // the same page as the mutable progress counter. Optimized: own
        // page, counter elsewhere.
        let (region_params, progress) = if optimized {
            (
                p.alloc_vec_aligned::<u64>(d.regions, "loop_params"),
                p.alloc_cell_aligned::<u64>(0, "progress_counter"),
            )
        } else {
            (
                p.alloc_vec::<u64>(d.regions, "loop_params"),
                p.alloc_cell_tagged::<u64>(0, "progress_counter"),
            )
        };
        // The residual norm accumulator: the "frequently updated" global
        // the paper found co-located with the loop parameters. The
        // initial port updates it from every thread every row; the
        // optimized port stages it locally and merges once per timestep.
        let residual = if optimized {
            p.alloc_cell_aligned::<u64>(0, "residual_norm")
        } else {
            p.alloc_cell_tagged::<u64>(0, "residual_norm")
        };
        // The parent's stack page, from which children read per-region
        // values in the initial port.
        let parent_stack = p.alloc_vec::<u64>(8, "parent_stack");

        let rows_per_worker = d.rows.div_ceil(threads);
        let params_outer = params2.clone();
        p.spawn(move |ctx| {
            for iter in 0..d.iters {
                // Serial section: main prepares this timestep's region
                // parameters (writes to the param page).
                ctx.set_site("bt.serial_setup");
                let values: Vec<u64> = (0..d.regions).map(|r| region_param(iter, r)).collect();
                region_params.write_slice(ctx, 0, &values);
                parent_stack.set(ctx, 0, iter as u64);
                ctx.compute_ops(1_000);

                // Fork the timestep's workers (the OpenMP region team).
                let barrier = ctx.new_barrier(threads as u32, "region_barrier");
                let handles: Vec<_> = (0..threads)
                    .map(|w| {
                        let params = params_outer.clone();
                        ctx.spawn_thread(format!("bt-w{w}-i{iter}"), move |ctx| {
                            migrate_worker(ctx, &params, w);
                            let first_row = w * rows_per_worker;
                            let last_row = ((w + 1) * rows_per_worker).min(d.rows);
                            let mut row = vec![0u64; d.cols];
                            for region in 0..d.regions {
                                // Read the loop parameters — refaults every
                                // region in the initial port because the
                                // progress counter dirties the page.
                                ctx.set_site("bt.read_params");
                                let param = region_params.get(ctx, region);
                                let expected = region_param(iter, region);
                                assert_eq!(param, expected, "param page corrupt");
                                if !optimized {
                                    // Children also read the parent stack.
                                    ctx.set_site("bt.parent_stack_read");
                                    let _ = parent_stack.get(ctx, 0);
                                }
                                ctx.set_site("bt.region_compute");
                                let mut local_residual = 0u64;
                                for r in first_row..last_row {
                                    grid.read_slice(ctx, r * d.cols, &mut row);
                                    for v in row.iter_mut() {
                                        *v = transform(*v, param);
                                    }
                                    grid.write_slice(ctx, r * d.cols, &row);
                                    ctx.compute_ops(d.cols as u64 * OPS_PER_ELEMENT);
                                    let rnorm = row.iter().fold(0u64, |a, v| a.wrapping_add(*v));
                                    if optimized {
                                        local_residual = local_residual.wrapping_add(rnorm);
                                    } else {
                                        // The original accumulates the norm
                                        // into the shared global per row —
                                        // and that global shares a page
                                        // with the loop parameters.
                                        ctx.set_site("bt.residual_update");
                                        residual.rmw(ctx, |v| v.wrapping_add(rnorm));
                                        ctx.set_site("bt.region_compute");
                                    }
                                }
                                if optimized && local_residual != 0 {
                                    ctx.set_site("bt.residual_merge");
                                    residual.rmw(ctx, |v| v.wrapping_add(local_residual));
                                }
                                barrier.wait(ctx);
                                if w == 0 {
                                    // Serial tail of the region: bump the
                                    // progress counter (on the param page
                                    // in the initial port!) and scribble
                                    // on the parent stack.
                                    ctx.set_site("bt.serial_tail");
                                    progress.rmw(ctx, |v| v + 1);
                                    if !optimized {
                                        parent_stack.set(
                                            ctx,
                                            1,
                                            (iter * d.regions + region) as u64,
                                        );
                                    }
                                }
                                barrier.wait(ctx);
                            }
                            migrate_home(ctx, &params);
                        })
                    })
                    .collect();
                for h in handles {
                    h.join(ctx);
                }
            }
        });
    });

    let values = grid_handle.expect("allocated").snapshot(&report);
    let mut sum = 0u64;
    for v in &values {
        sum = sum.wrapping_add(*v);
    }
    let checksum = mix(0xcbf29ce484222325, sum);
    AppResult {
        name: "BT",
        params: params.clone(),
        elapsed: report.virtual_time,
        checksum,
        stats: report.stats,
        report,
    }
}

/// Sequential reference checksum.
pub fn reference_checksum(params: &AppParams) -> u64 {
    let d = dims(params.scale);
    let mut grid = initial_grid(params.seed, d.rows * d.cols);
    for iter in 0..d.iters {
        for region in 0..d.regions {
            let param = region_param(iter, region);
            for v in grid.iter_mut() {
                *v = transform(*v, param);
            }
        }
    }
    let mut sum = 0u64;
    for v in &grid {
        sum = sum.wrapping_add(*v);
    }
    mix(0xcbf29ce484222325, sum)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transform_composes_deterministically() {
        let a = transform(transform(5, 1), 2);
        let b = transform(transform(5, 1), 2);
        assert_eq!(a, b);
        assert_ne!(a, transform(transform(5, 2), 1));
    }

    #[test]
    fn initial_matches_reference() {
        let params = AppParams::test(2, Variant::Initial);
        assert_eq!(run(&params).checksum, reference_checksum(&params));
    }

    #[test]
    fn optimized_matches_reference() {
        let params = AppParams::test(2, Variant::Optimized);
        assert_eq!(run(&params).checksum, reference_checksum(&params));
    }

    #[test]
    fn optimized_cuts_param_page_refaults() {
        // Count faults attributed to the loop-parameter object via the
        // trace: the initial port re-pulls the page every region because
        // the progress counter dirties it; the optimized port replicates
        // it once per node.
        fn param_faults(variant: Variant) -> usize {
            let mut p = AppParams::new(2, variant).with_trace();
            p.threads_per_node = 4;
            let r = run(&p);
            r.report
                .trace
                .iter()
                .filter(|e| e.tag.as_deref() == Some("loop_params"))
                .count()
        }
        let initial = param_faults(Variant::Initial);
        let optimized = param_faults(Variant::Optimized);
        assert!(
            optimized * 3 < initial.max(1),
            "optimized {optimized} vs initial {initial}"
        );
    }

    #[test]
    fn workers_remigrate_every_timestep() {
        let params = AppParams::test(2, Variant::Initial);
        let result = run(&params);
        let d = dims(params.scale);
        // Workers on non-origin nodes migrate once per timestep.
        let remote_workers = params.total_threads() - params.threads_per_node;
        assert_eq!(
            result.stats.forward_migrations,
            (remote_workers * d.iters) as u64
        );
    }
}
