//! BLK — Black-Scholes option pricing (PARSEC, pthread variant).
//!
//! Prices a batch of European options with the closed-form model: inputs
//! are read-only (they replicate cleanly under DEX) and each thread writes
//! a disjoint slice of the result array. The only cross-node interference
//! in the *initial* port is partition-boundary pages of the packed result
//! array; the *optimized* port page-aligns each thread's result slab.

use crate::workloads::{black_scholes, option_batch, OptionContract};
use crate::{
    migrate_home, migrate_worker, mix, quantize, run_cluster, AppParams, AppResult, Scale, Variant,
};

/// Abstract ops per option: PARSEC evaluates the closed form NUM_RUNS=100
/// times per option (logs, exp, polynomial CND each time).
const OPS_PER_OPTION: u64 = 20_000;
const CHUNK: usize = 512;

fn batch_size(scale: Scale) -> usize {
    match scale {
        Scale::Test => 4_096,
        Scale::Evaluation => 131_072,
    }
}

fn encode(option: &OptionContract) -> [f64; 6] {
    [
        option.spot,
        option.strike,
        option.rate,
        option.volatility,
        option.expiry,
        if option.call { 1.0 } else { 0.0 },
    ]
}

fn decode(raw: &[f64; 6]) -> OptionContract {
    OptionContract {
        spot: raw[0],
        strike: raw[1],
        rate: raw[2],
        volatility: raw[3],
        expiry: raw[4],
        call: raw[5] > 0.5,
    }
}

/// Runs BLK under the given parameters.
pub fn run(params: &AppParams) -> AppResult {
    let n = batch_size(params.scale);
    let options = option_batch(params.seed, n);
    let threads = params.total_threads();
    let optimized = params.variant == Variant::Optimized;

    let mut price_handles = Vec::new();
    let params2 = params.clone();
    let per_worker = n.div_ceil(threads);
    let report = run_cluster(params, |p| {
        let inputs = p.alloc_vec::<[f64; 6]>(n, "options");
        inputs.init(p, &options.iter().map(encode).collect::<Vec<_>>());

        // Result storage: one packed array (initial) vs per-thread
        // page-aligned slabs (optimized, the posix_memalign fix).
        let packed = p.alloc_vec::<u64>(n, "prices");
        let slabs: Vec<_> = (0..threads)
            .map(|w| p.alloc_vec_aligned::<u64>(per_worker, &format!("prices_t{w}")))
            .collect();
        if optimized {
            price_handles = slabs.clone();
        } else {
            price_handles = vec![packed];
        }

        for (w, slab) in slabs.iter().copied().enumerate().take(threads) {
            let params = params2.clone();
            p.spawn(move |ctx| {
                migrate_worker(ctx, &params, w);
                ctx.set_site("blk.price_loop");
                let first = w * per_worker;
                let last = (first + per_worker).min(n);
                let mut in_buf = vec![[0f64; 6]; CHUNK];
                let mut out_buf = vec![0u64; CHUNK];
                let mut i = first;
                while i < last {
                    let len = CHUNK.min(last - i);
                    inputs.read_slice(ctx, i, &mut in_buf[..len]);
                    ctx.compute_ops(len as u64 * OPS_PER_OPTION);
                    for j in 0..len {
                        out_buf[j] = quantize(black_scholes(&decode(&in_buf[j])));
                    }
                    if optimized {
                        slab.write_slice(ctx, i - first, &out_buf[..len]);
                    } else {
                        packed.write_slice(ctx, i, &out_buf[..len]);
                    }
                    i += len;
                }
                migrate_home(ctx, &params);
            });
        }
    });

    // Reduce: wrapping sum of quantized prices (order-independent).
    let mut sum = 0u64;
    if optimized {
        for (w, slab) in price_handles.iter().enumerate() {
            let first = w * per_worker;
            let last = (first + per_worker).min(n);
            for v in slab
                .snapshot(&report)
                .iter()
                .take(last.saturating_sub(first))
            {
                sum = sum.wrapping_add(*v);
            }
        }
    } else {
        for v in price_handles[0].snapshot(&report) {
            sum = sum.wrapping_add(v);
        }
    }
    let checksum = mix(0xcbf29ce484222325, sum);
    AppResult {
        name: "BLK",
        params: params.clone(),
        elapsed: report.virtual_time,
        checksum,
        stats: report.stats,
        report,
    }
}

/// Sequential reference checksum.
pub fn reference_checksum(params: &AppParams) -> u64 {
    let options = option_batch(params.seed, batch_size(params.scale));
    let mut sum = 0u64;
    for o in &options {
        sum = sum.wrapping_add(quantize(black_scholes(o)));
    }
    mix(0xcbf29ce484222325, sum)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let o = OptionContract {
            spot: 55.5,
            strike: 60.0,
            rate: 0.03,
            volatility: 0.25,
            expiry: 0.75,
            call: false,
        };
        let d = decode(&encode(&o));
        assert_eq!(d.spot, o.spot);
        assert_eq!(d.call, o.call);
    }

    #[test]
    fn initial_matches_reference() {
        let params = AppParams::test(2, Variant::Initial);
        assert_eq!(run(&params).checksum, reference_checksum(&params));
    }

    #[test]
    fn optimized_matches_reference() {
        let params = AppParams::test(2, Variant::Optimized);
        assert_eq!(run(&params).checksum, reference_checksum(&params));
    }

    #[test]
    fn scales_beyond_single_node() {
        let one = run(&AppParams::test(1, Variant::Initial));
        let two = run(&AppParams::test(2, Variant::Initial));
        let speedup = one.elapsed.as_secs_f64() / two.elapsed.as_secs_f64();
        assert!(speedup > 1.2, "BLK speedup 1→2 nodes: {speedup:.2}");
    }
}
