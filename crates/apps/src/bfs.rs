//! BFS — breadth-first search (Polymer-style graph analytics).
//!
//! Level-synchronous BFS over an R-MAT graph. The *initial* port is the
//! classic push traversal: threads scan the frontier in their vertex
//! partition and write discovery levels into neighbors — which live
//! anywhere, so the level array's few pages bounce between all nodes, and
//! a global discovered-counter is bumped per discovery. The *optimized*
//! port applies Polymer's NUMA treatment (§V-C "packed these data objects
//! into a per-node data structure"): edges are pre-partitioned by
//! *destination* so every level write is node-local, frontier knowledge is
//! pulled read-only, and discovery counts are staged locally and merged
//! once per level.
//!
//! Both traversals assign identical levels, so one reference checksum
//! covers all variants.

use crate::workloads::{rmat_graph, Csr};
use crate::{migrate_home, migrate_worker, mix, run_cluster, AppParams, AppResult, Scale, Variant};

/// Abstract ops per edge relaxation (pointer-chasing graph work is
/// cache-hostile: several hundred ns per edge).
const OPS_PER_EDGE: u64 = 600;
/// Abstract ops per vertex scanned for frontier membership.
const OPS_PER_VERTEX: u64 = 4;
const MAX_LEVELS: usize = 48;
const ROOT: usize = 0;

struct Dims {
    vertices: usize,
    edges: usize,
}

fn dims(scale: Scale) -> Dims {
    match scale {
        Scale::Test => Dims {
            vertices: 1 << 10,
            edges: 1 << 11,
        },
        Scale::Evaluation => Dims {
            vertices: 1 << 14,
            // The paper's graph has fewer edges than vertices (67M/50M);
            // keep a similar sparse ratio.
            edges: (1 << 14) * 3 / 4,
        },
    }
}

fn sequential_levels(graph: &Csr) -> Vec<i32> {
    let mut levels = vec![-1i32; graph.vertices()];
    levels[ROOT] = 0;
    let mut frontier = vec![ROOT];
    let mut level = 0;
    while !frontier.is_empty() && (level as usize) < MAX_LEVELS {
        let mut next = Vec::new();
        for &v in &frontier {
            for &u in graph.neighbors(v) {
                if levels[u as usize] == -1 {
                    levels[u as usize] = level + 1;
                    next.push(u as usize);
                }
            }
        }
        frontier = next;
        level += 1;
    }
    levels
}

fn checksum_levels(levels: &[i32]) -> u64 {
    let mut sum = 0u64;
    for l in levels {
        sum = sum.wrapping_add(*l as i64 as u64);
    }
    mix(0xcbf29ce484222325, sum)
}

/// Runs BFS under the given parameters.
pub fn run(params: &AppParams) -> AppResult {
    let d = dims(params.scale);
    let graph = rmat_graph(params.seed, d.vertices, d.edges);
    let v_count = graph.vertices();
    let threads = params.total_threads();
    let optimized = params.variant == Variant::Optimized;
    let per_worker = v_count.div_ceil(threads);

    // Polymer-style preprocessing (host side, like Polymer's graph load):
    // for the optimized variant, give each worker the edges whose
    // *destination* falls in its partition.
    let incoming: Vec<Vec<(u32, u32)>> = if optimized {
        let mut per = vec![Vec::new(); threads];
        for src in 0..v_count {
            for &dst in graph.neighbors(src) {
                let owner = (dst as usize / per_worker).min(threads - 1);
                per[owner].push((src as u32, dst));
            }
        }
        per
    } else {
        Vec::new()
    };

    let mut levels_handle = None;
    let params2 = params.clone();
    let report = run_cluster(params, |p| {
        // Graph structure: read-only, replicates cleanly.
        let offsets = p.alloc_vec::<u32>(v_count + 1, "csr_offsets");
        offsets.init(p, &graph.offsets);
        let targets = p.alloc_vec::<u32>(graph.edges().max(1), "csr_targets");
        targets.init(p, &graph.targets);

        let levels = if optimized {
            p.alloc_vec_aligned::<i32>(v_count, "levels")
        } else {
            p.alloc_vec::<i32>(v_count, "levels")
        };
        let mut init_levels = vec![-1i32; v_count];
        init_levels[ROOT] = 0;
        levels.init(p, &init_levels);
        levels_handle = Some(levels);

        // Discovered-this-level counter: the initial port bumps it per
        // discovery; the optimized port merges once per worker per level.
        let discovered = if optimized {
            p.alloc_cell_aligned::<u64>(0, "discovered_count")
        } else {
            p.alloc_cell_tagged::<u64>(0, "discovered_count")
        };

        let barrier = p.new_barrier(threads as u32, "level_barrier");
        let graph_offsets = graph.offsets.clone();

        #[allow(clippy::needless_range_loop)] // w also selects the partition
        for w in 0..threads {
            let params = params2.clone();
            let my_incoming = if optimized {
                incoming[w].clone()
            } else {
                Vec::new()
            };
            let offsets_host = graph_offsets.clone();
            p.spawn(move |ctx| {
                migrate_worker(ctx, &params, w);
                let first = w * per_worker;
                let last = ((w + 1) * per_worker).min(v_count);
                let mut level_buf = vec![0i32; last.saturating_sub(first)];
                let mut continue_search = true;
                let mut level = 0i32;

                while continue_search && (level as usize) < MAX_LEVELS {
                    if optimized {
                        // Pull along incoming edges: every write is local.
                        ctx.set_site("bfs.pull_incoming");
                        let mut local_discovered = 0u64;
                        ctx.compute_ops(my_incoming.len() as u64 * 2);
                        for &(src, dst) in &my_incoming {
                            // Frontier test: read the source's level
                            // (read-only replication of remote pages).
                            if levels.get(ctx, src as usize) == level
                                && levels.get(ctx, dst as usize) == -1
                            {
                                ctx.compute_ops(OPS_PER_EDGE);
                                levels.set(ctx, dst as usize, level + 1);
                                local_discovered += 1;
                            }
                        }
                        if local_discovered > 0 {
                            ctx.set_site("bfs.merge_discovered");
                            discovered.rmw(ctx, |v| v + local_discovered);
                        }
                    } else {
                        // Push from the frontier: writes scatter anywhere.
                        ctx.set_site("bfs.scan_frontier");
                        if first < last {
                            levels.read_slice(ctx, first, &mut level_buf);
                        }
                        ctx.compute_ops((last - first) as u64 * OPS_PER_VERTEX);
                        for v in first..last {
                            if level_buf[v - first] != level {
                                continue;
                            }
                            let lo = offsets_host[v] as usize;
                            let hi = offsets_host[v + 1] as usize;
                            for e in lo..hi {
                                ctx.set_site("bfs.push_discover");
                                let u = targets.get(ctx, e) as usize;
                                ctx.compute_ops(OPS_PER_EDGE);
                                if levels.get(ctx, u) == -1 {
                                    levels.set(ctx, u, level + 1);
                                    discovered.rmw(ctx, |c| c + 1);
                                }
                            }
                        }
                    }

                    barrier.wait(ctx);
                    let found = discovered.get(ctx);
                    barrier.wait(ctx);
                    if w == 0 {
                        discovered.set(ctx, 0);
                    }
                    barrier.wait(ctx);
                    continue_search = found > 0;
                    level += 1;
                }
                migrate_home(ctx, &params);
            });
        }
    });

    let final_levels = levels_handle.expect("allocated").snapshot(&report);
    AppResult {
        name: "BFS",
        params: params.clone(),
        elapsed: report.virtual_time,
        checksum: checksum_levels(&final_levels),
        stats: report.stats,
        report,
    }
}

/// Sequential reference checksum.
pub fn reference_checksum(params: &AppParams) -> u64 {
    let d = dims(params.scale);
    let graph = rmat_graph(params.seed, d.vertices, d.edges);
    checksum_levels(&sequential_levels(&graph))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_bfs_levels_are_sane() {
        let graph = rmat_graph(42, 256, 512);
        let levels = sequential_levels(&graph);
        assert_eq!(levels[ROOT], 0);
        // Level of every reachable vertex is 1 + level of some neighbor.
        for v in 0..graph.vertices() {
            if levels[v] > 0 {
                assert!(graph
                    .neighbors(v)
                    .iter()
                    .any(|&u| levels[u as usize] == levels[v] - 1));
            }
        }
    }

    #[test]
    fn initial_matches_reference() {
        let params = AppParams::test(2, Variant::Initial);
        assert_eq!(run(&params).checksum, reference_checksum(&params));
    }

    #[test]
    fn optimized_matches_reference() {
        let params = AppParams::test(2, Variant::Optimized);
        assert_eq!(run(&params).checksum, reference_checksum(&params));
    }

    #[test]
    fn optimized_localizes_writes() {
        let mut ip = AppParams::new(2, Variant::Initial);
        ip.threads_per_node = 4;
        let mut op = AppParams::new(2, Variant::Optimized);
        op.threads_per_node = 4;
        let initial = run(&ip);
        let optimized = run(&op);
        assert!(
            optimized.stats.invalidations < initial.stats.invalidations,
            "optimized {} vs initial {}",
            optimized.stats.invalidations,
            initial.stats.invalidations
        );
    }
}
