//! GRP — string match (Phoenix-style).
//!
//! Looks up four key strings in a text corpus and counts their
//! occurrences; the input is divided into partitions and each thread
//! counts occurrences in its partition (§V, "Benchmark applications").
//!
//! *Initial* conversion hazards (as the paper found): every occurrence
//! updates a global per-key counter, all four counters live on one page,
//! and per-thread scratch slots are packed onto a shared page — so remote
//! threads continually bounce those pages. The *optimized* version stages
//! counts thread-locally and merges once per thread at the end, with the
//! merge targets page-aligned (§V-C).

use crate::workloads::{count_keys, text_corpus, TextCorpus};
use crate::{migrate_home, migrate_worker, mix, run_cluster, AppParams, AppResult, Scale, Variant};

const CHUNK: usize = 4096;
/// Scan cost: ~65 MB/s multi-key matching (30 abstract ops per byte at
/// the 0.5 ns/op model).
const OPS_PER_BYTE: u64 = 30;
/// Longest key, for chunk-boundary overlap.
const MAX_KEY: usize = 10;

fn text_len(scale: Scale) -> usize {
    match scale {
        Scale::Test => 64 * 1024,
        Scale::Evaluation => 8 * 1024 * 1024,
    }
}

/// Counts occurrences of each key *starting* in `[start, end)` of `text`.
/// Scans up to `MAX_KEY - 1` bytes past `end` so boundary matches are
/// attributed exactly once.
fn count_starting_in(text: &[u8], keys: &[Vec<u8>], start: usize, end: usize) -> Vec<u64> {
    keys.iter()
        .map(|key| {
            let mut n = 0u64;
            if key.is_empty() {
                return 0;
            }
            for pos in start..end.min(text.len()) {
                if text.len() - pos >= key.len() && &text[pos..pos + key.len()] == key.as_slice() {
                    n += 1;
                }
            }
            n
        })
        .collect()
}

/// Runs GRP under the given parameters.
pub fn run(params: &AppParams) -> AppResult {
    let len = text_len(params.scale);
    let corpus = text_corpus(params.seed, len);
    let keys = corpus.keys.clone();
    let threads = params.total_threads();
    let optimized = params.variant == Variant::Optimized;

    let mut counts_handle = None;
    let mut slots_handle = None;
    let params2 = params.clone();
    let report = run_cluster(params, |p| {
        let text = p.alloc_vec::<u8>(len, "text");
        text.init(p, &corpus.bytes);

        // Per-key global counters. Initial: packed on one page together
        // with the per-thread scratch slots. Optimized: page-aligned and
        // merged into only once per thread.
        let counts = p.alloc_vec::<u64>(keys.len(), "key_counts");
        counts_handle = Some(counts);
        let scratch = p.alloc_vec::<u64>(threads, "thread_scratch");
        // Match-position output buffers: the initial port allocates them
        // packed from the heap "without considering the locations of
        // other thread buffers" (§V-C) — 16 slots per thread share pages
        // across threads and nodes.
        let outputs = p.alloc_vec::<u64>(threads * 16, "match_outputs");
        // Optimized: page-aligned per-thread result slots written once at
        // the end (posix_memalign'd buffers, merged by the main thread).
        let slots = p.alloc_vec_aligned::<u64>(threads * 512, "thread_result_slots");
        slots_handle = Some(slots);

        let chunks = len.div_ceil(CHUNK);
        let per_worker = chunks.div_ceil(threads);
        for w in 0..threads {
            let keys = keys.clone();
            let params = params2.clone();
            p.spawn(move |ctx| {
                migrate_worker(ctx, &params, w);
                ctx.set_site("grp.scan");
                let first = w * per_worker;
                let last = (first + per_worker).min(chunks);
                let mut local = vec![0u64; keys.len()];
                let mut buf = vec![0u8; CHUNK + MAX_KEY];
                for c in first..last {
                    let start = c * CHUNK;
                    let end = (start + CHUNK).min(len);
                    let read_end = (end + MAX_KEY - 1).min(len);
                    let slice = &mut buf[..read_end - start];
                    text.read_slice(ctx, start, slice);
                    ctx.compute_ops((end - start) as u64 * OPS_PER_BYTE);
                    let found = count_starting_in(slice, &keys, 0, end - start);
                    for (k, n) in found.iter().enumerate() {
                        local[k] += n;
                        if !optimized && *n > 0 {
                            // The original program bumps the shared
                            // counter as it finds occurrences.
                            ctx.set_site("grp.global_count_update");
                            for occ in 0..*n {
                                let addr = counts.addr_of(k);
                                ctx.rmw_bytes(addr, 8, |b| {
                                    let v = u64::from_le_bytes(b.try_into().expect("8 bytes"));
                                    b.copy_from_slice(&(v + 1).to_le_bytes());
                                });
                                // Record the match position in this
                                // thread's packed output buffer.
                                ctx.set_site("grp.record_match");
                                outputs.set(ctx, w * 16 + (occ as usize % 16), start as u64);
                                ctx.set_site("grp.global_count_update");
                            }
                            ctx.set_site("grp.scan");
                        }
                    }
                    if !optimized {
                        // Progress written to a packed per-thread slot —
                        // co-located per-node data, the classic hazard.
                        ctx.set_site("grp.scratch_progress");
                        let total: u64 = local.iter().sum();
                        scratch.set(ctx, w, total);
                        ctx.set_site("grp.scan");
                    }
                }
                if optimized {
                    // Publish once into this thread's own aligned slot;
                    // the main thread reduces after the join.
                    ctx.set_site("grp.publish_results");
                    slots.write_slice(ctx, w * 512, &local);
                }
                migrate_home(ctx, &params);
            });
        }
    });

    let totals: Vec<u64> = if optimized {
        let raw = slots_handle.expect("allocated in setup").snapshot(&report);
        let mut sums = vec![0u64; keys.len()];
        for w in 0..threads {
            for (k, s) in sums.iter_mut().enumerate() {
                *s += raw[w * 512 + k];
            }
        }
        sums
    } else {
        counts_handle.expect("allocated in setup").snapshot(&report)
    };
    let mut checksum = 0xcbf29ce484222325;
    for t in &totals {
        checksum = mix(checksum, *t);
    }
    AppResult {
        name: "GRP",
        params: params.clone(),
        elapsed: report.virtual_time,
        checksum,
        stats: report.stats,
        report,
    }
}

/// Sequential reference checksum.
pub fn reference_checksum(params: &AppParams) -> u64 {
    let TextCorpus { bytes, keys } = text_corpus(params.seed, text_len(params.scale));
    let counts = count_keys(&bytes, &keys);
    let mut checksum = 0xcbf29ce484222325;
    for c in &counts {
        checksum = mix(checksum, *c);
    }
    checksum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitioned_count_equals_whole_count() {
        let corpus = text_corpus(3, 50_000);
        let whole = count_keys(&corpus.bytes, &corpus.keys);
        let mut partitioned = vec![0u64; corpus.keys.len()];
        for start in (0..corpus.bytes.len()).step_by(7_000) {
            let end = (start + 7_000).min(corpus.bytes.len());
            let counts = count_starting_in(&corpus.bytes, &corpus.keys, start, end);
            for (k, n) in counts.iter().enumerate() {
                partitioned[k] += n;
            }
        }
        assert_eq!(whole, partitioned);
    }

    #[test]
    fn initial_variant_matches_reference_on_two_nodes() {
        let params = AppParams::test(2, Variant::Initial);
        let result = run(&params);
        assert_eq!(result.checksum, reference_checksum(&params));
        // Only workers assigned to non-origin nodes actually migrate.
        assert!(result.stats.forward_migrations >= 4);
    }

    #[test]
    fn optimized_variant_matches_reference_on_two_nodes() {
        let params = AppParams::test(2, Variant::Optimized);
        let result = run(&params);
        assert_eq!(result.checksum, reference_checksum(&params));
    }

    #[test]
    fn baseline_runs_on_one_node_without_migration() {
        let params = AppParams::test(4, Variant::Baseline);
        let result = run(&params);
        assert_eq!(result.checksum, reference_checksum(&params));
        assert_eq!(result.stats.forward_migrations, 0);
    }

    #[test]
    fn optimization_reduces_write_faults() {
        // Contention only shows at evaluation scale (the test corpus is
        // too small for the counter storm to matter).
        let mut initial_params = AppParams::new(2, Variant::Initial);
        initial_params.threads_per_node = 4;
        let mut optimized_params = AppParams::new(2, Variant::Optimized);
        optimized_params.threads_per_node = 4;
        let initial = run(&initial_params);
        let optimized = run(&optimized_params);
        assert!(
            optimized.stats.write_faults * 4 < initial.stats.write_faults,
            "optimized {} vs initial {}",
            optimized.stats.write_faults,
            initial.stats.write_faults
        );
        assert!(
            optimized.elapsed < initial.elapsed,
            "optimized {} vs initial {}",
            optimized.elapsed,
            initial.elapsed
        );
    }
}
