//! BP — belief propagation (Polymer-style).
//!
//! Iterative sweeps over a partitioned vertex array: each thread streams
//! its partition (Jacobi updates from the previous iteration's values),
//! touching only partition-boundary elements of its neighbors. The
//! computation is **memory-bandwidth bound** on a single machine — the
//! paper observed CPUs underutilized and super-linear scaling (3.84× from
//! 1→2 nodes) because spreading the sweep over more nodes aggregates
//! memory channels *and* shrinks each node's working set toward its
//! last-level cache.
//!
//! The cache effect is modeled explicitly here: when a node's partition
//! fits in the Xeon 4110's 11 MiB LLC, only a quarter of the bytes hit
//! DRAM (documented in DESIGN.md).

use crate::{
    migrate_home, migrate_worker, mix, quantize, run_cluster, AppParams, AppResult, Scale, Variant,
};

/// Effective per-node cache: 11 MiB L3 plus the eight cores' 1 MiB L2s.
const LLC_BYTES: u64 = 16 * 1024 * 1024;
/// DRAM-traffic discount once the per-node working set fits the cache.
const CACHE_DISCOUNT: u64 = 4;
/// Abstract compute ops per vertex per sweep.
const OPS_PER_VERTEX: u64 = 10;
/// DRAM bytes per vertex per sweep: the belief plus the incident edge
/// messages in both directions (~4 edges x 8 B x 2).
const BYTES_PER_VERTEX: u64 = 64;

struct Dims {
    vertices: usize,
    iters: usize,
}

fn dims(scale: Scale) -> Dims {
    match scale {
        Scale::Test => Dims {
            vertices: 1 << 14,
            iters: 4,
        },
        Scale::Evaluation => Dims {
            vertices: 1 << 19,
            iters: 24,
        },
    }
}

fn initial_beliefs(seed: u64, n: usize) -> Vec<f64> {
    let mut rng = dex_sim::SimRng::new(seed ^ 0x4250);
    (0..n).map(|_| rng.gen_f64()).collect()
}

/// One Jacobi sweep (ring topology): `dst[i] = (src[i-1] + src[i] +
/// src[i+1]) / 3` — order-independent, so the distributed result is
/// bit-identical to the sequential one.
fn sweep(src: &[f64], dst: &mut [f64], first: usize, last: usize) {
    let n = src.len();
    for i in first..last {
        let left = src[(i + n - 1) % n];
        let right = src[(i + 1) % n];
        dst[i] = (left + src[i] + right) / 3.0;
    }
}

/// Runs BP under the given parameters.
pub fn run(params: &AppParams) -> AppResult {
    let d = dims(params.scale);
    let n = d.vertices;
    let beliefs = initial_beliefs(params.seed, n);
    let threads = params.total_threads();
    let optimized = params.variant == Variant::Optimized;
    let nodes = match params.variant {
        Variant::Baseline => 1,
        _ => params.nodes,
    };

    let mut final_handles = None;
    let params2 = params.clone();
    let report = run_cluster(params, |p| {
        let a = p.alloc_vec_aligned::<f64>(n, "beliefs_a");
        let b = p.alloc_vec_aligned::<f64>(n, "beliefs_b");
        a.init(p, &beliefs);
        final_handles = Some((a, b));

        // Per-thread temporaries. Initial: packed on shared pages, so
        // threads on different nodes interfere while writing scratch.
        // Optimized: page-aligned per-node structures (Polymer's fix).
        let scratch = if optimized {
            p.alloc_vec_aligned::<u64>(threads * 512, "thread_scratch")
        } else {
            p.alloc_vec::<u64>(threads, "thread_scratch")
        };

        let barrier = p.new_barrier(threads as u32, "sweep_barrier");
        let per_worker = n.div_ceil(threads);
        // DRAM bytes per sweep per worker, after the cache model.
        let partition_bytes_per_node = (n as u64 * BYTES_PER_VERTEX) / nodes as u64;
        let dram_bytes = {
            let full = per_worker as u64 * BYTES_PER_VERTEX;
            if partition_bytes_per_node <= LLC_BYTES {
                full / CACHE_DISCOUNT
            } else {
                full
            }
        };

        for w in 0..threads {
            let params = params2.clone();
            p.spawn(move |ctx| {
                migrate_worker(ctx, &params, w);
                let first = w * per_worker;
                let last = (first + per_worker).min(n);
                if first >= last {
                    migrate_home(ctx, &params);
                    return;
                }
                let len = last - first;
                let mut mid = vec![0f64; len];
                let mut dst = vec![0f64; len];

                for iter in 0..d.iters {
                    let (from, to) = if iter % 2 == 0 { (a, b) } else { (b, a) };
                    ctx.set_site("bp.sweep");
                    // Stream the partition; the two ring-boundary reads may
                    // cross node partitions (the only cross-node traffic).
                    from.read_slice(ctx, first, &mut mid);
                    let left = from.get(ctx, (first + n - 1) % n);
                    let right = from.get(ctx, last % n);

                    // Memory traffic dominates: stream through the node's
                    // shared DRAM pipe (with the LLC model applied).
                    ctx.membound(dram_bytes);
                    ctx.compute_ops(len as u64 * OPS_PER_VERTEX);

                    for i in 0..len {
                        let l = if i == 0 { left } else { mid[i - 1] };
                        let r = if i + 1 == len { right } else { mid[i + 1] };
                        dst[i] = (l + mid[i] + r) / 3.0;
                    }
                    to.write_slice(ctx, first, &dst);

                    if !optimized {
                        // Scratch poke on the packed page (false sharing).
                        ctx.set_site("bp.scratch_progress");
                        scratch.set(ctx, w, iter as u64);
                    }
                    barrier.wait(ctx);
                }
                migrate_home(ctx, &params);
            });
        }
    });

    let (a, b) = final_handles.expect("allocated");
    let final_vec = if d.iters.is_multiple_of(2) { a } else { b };
    let values = final_vec.snapshot(&report);
    let mut sum = 0u64;
    for v in &values {
        sum = sum.wrapping_add(quantize(*v));
    }
    let checksum = mix(0xcbf29ce484222325, sum);
    AppResult {
        name: "BP",
        params: params.clone(),
        elapsed: report.virtual_time,
        checksum,
        stats: report.stats,
        report,
    }
}

/// Sequential reference checksum.
pub fn reference_checksum(params: &AppParams) -> u64 {
    let d = dims(params.scale);
    let mut src = initial_beliefs(params.seed, d.vertices);
    let mut dst = vec![0f64; d.vertices];
    for _ in 0..d.iters {
        sweep(&src, &mut dst, 0, d.vertices);
        std::mem::swap(&mut src, &mut dst);
    }
    let mut sum = 0u64;
    for v in &src {
        sum = sum.wrapping_add(quantize(*v));
    }
    mix(0xcbf29ce484222325, sum)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_partition_independent() {
        let src: Vec<f64> = (0..100).map(|i| i as f64 * 0.5).collect();
        let mut whole = vec![0f64; 100];
        sweep(&src, &mut whole, 0, 100);
        let mut split = vec![0f64; 100];
        sweep(&src, &mut split, 0, 37);
        sweep(&src, &mut split, 37, 80);
        sweep(&src, &mut split, 80, 100);
        assert_eq!(whole, split);
    }

    #[test]
    fn initial_matches_reference() {
        let params = AppParams::test(2, Variant::Initial);
        assert_eq!(run(&params).checksum, reference_checksum(&params));
    }

    #[test]
    fn optimized_matches_reference() {
        let params = AppParams::test(2, Variant::Optimized);
        assert_eq!(run(&params).checksum, reference_checksum(&params));
    }
}
