//! FT — 3-D FFT (NPB), modeled as its dominant communication pattern.
//!
//! NPB FT alternates local butterfly computation with a matrix transpose —
//! an **all-to-all** exchange in which every node needs a slice of every
//! other node's partition, every iteration. That exchange is the reason
//! FT stayed below single-machine performance on DEX even after
//! optimization (§V-B/§V-C): no layout fix removes inherent all-to-all
//! traffic.
//!
//! The model keeps exact integer arithmetic (scramble + transpose per
//! iteration) so the distributed result is checkable bit-for-bit. The
//! OpenMP regions are mapped to barrier-separated phases of persistent
//! workers (fork-join per region with re-migration would let migration
//! overhead dominate at this reduced scale; see DESIGN.md).

use crate::{migrate_home, migrate_worker, mix, run_cluster, AppParams, AppResult, Scale, Variant};

/// Abstract ops per element per compute phase (butterfly stand-in —
/// several complex multiply-adds per element per 1-D FFT pass).
const OPS_PER_ELEMENT: u64 = 300;

struct Dims {
    /// The grid is `side × side` `u64`s.
    side: usize,
    iters: usize,
}

fn dims(scale: Scale) -> Dims {
    match scale {
        Scale::Test => Dims { side: 64, iters: 2 },
        Scale::Evaluation => Dims {
            side: 192,
            iters: 3,
        },
    }
}

fn initial_grid(seed: u64, side: usize) -> Vec<u64> {
    let mut rng = dex_sim::SimRng::new(seed ^ 0x4654);
    (0..side * side).map(|_| rng.next_u64()).collect()
}

/// The per-element "butterfly" transform (exact integer math).
fn scramble(v: u64, iter: u64) -> u64 {
    v.wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407 ^ iter)
        .rotate_left(17)
}

/// Runs FT under the given parameters.
pub fn run(params: &AppParams) -> AppResult {
    let d = dims(params.scale);
    let side = d.side;
    let grid0 = initial_grid(params.seed, side);
    let threads = params.total_threads();
    let optimized = params.variant == Variant::Optimized;

    let mut handles = None;
    let params2 = params.clone();
    let report = run_cluster(params, |p| {
        // Two grids, double-buffered across the transpose. Optimized:
        // page-aligned (partition boundaries stop sharing pages).
        let (a, b) = if optimized {
            (
                p.alloc_vec_aligned::<u64>(side * side, "grid_a"),
                p.alloc_vec_aligned::<u64>(side * side, "grid_b"),
            )
        } else {
            (
                p.alloc_vec::<u64>(side * side, "grid_a"),
                p.alloc_vec::<u64>(side * side, "grid_b"),
            )
        };
        a.init(p, &grid0);
        handles = Some((a, b));

        let barrier = p.new_barrier(threads as u32, "phase_barrier");
        let rows_per_worker = side.div_ceil(threads);

        for w in 0..threads {
            let params = params2.clone();
            p.spawn(move |ctx| {
                migrate_worker(ctx, &params, w);
                // Trailing workers may get an empty partition when the
                // grid does not divide evenly; they still join barriers.
                let first_row = (w * rows_per_worker).min(side);
                let last_row = ((w + 1) * rows_per_worker).min(side);
                let mut row = vec![0u64; side];

                for iter in 0..d.iters {
                    let (from, to) = if iter % 2 == 0 { (a, b) } else { (b, a) };

                    // Compute phase: scramble this worker's rows in place.
                    ctx.set_site("ft.butterfly");
                    for r in first_row..last_row {
                        from.read_slice(ctx, r * side, &mut row);
                        for v in row.iter_mut() {
                            *v = scramble(*v, iter as u64);
                        }
                        from.write_slice(ctx, r * side, &row);
                        ctx.compute_ops(side as u64 * OPS_PER_ELEMENT);
                    }
                    barrier.wait(ctx);

                    // Transpose phase (pull): to fill its own rows of the
                    // destination, the worker reads a column slice of
                    // *every* source row — the all-to-all.
                    ctx.set_site("ft.transpose");
                    let my_rows = last_row - first_row;
                    let mut stage = vec![0u64; my_rows * side];
                    let mut col_slice = vec![0u64; my_rows];
                    for src_row in 0..side {
                        // dst[first_row + k][src_row] = from[src_row][first_row + k]
                        from.read_slice(ctx, src_row * side + first_row, &mut col_slice);
                        for (k, v) in col_slice.iter().enumerate() {
                            stage[k * side + src_row] = *v;
                        }
                    }
                    ctx.compute_ops((my_rows * side) as u64 * 2);
                    for k in 0..my_rows {
                        to.write_slice(
                            ctx,
                            (first_row + k) * side,
                            &stage[k * side..(k + 1) * side],
                        );
                    }
                    barrier.wait(ctx);
                }
                migrate_home(ctx, &params);
            });
        }
    });

    let (a, b) = handles.expect("allocated");
    let final_grid = if d.iters.is_multiple_of(2) { a } else { b };
    let values = final_grid.snapshot(&report);
    let mut sum = 0u64;
    for v in &values {
        sum = sum.wrapping_add(*v);
    }
    let checksum = mix(0xcbf29ce484222325, sum);
    AppResult {
        name: "FT",
        params: params.clone(),
        elapsed: report.virtual_time,
        checksum,
        stats: report.stats,
        report,
    }
}

/// Sequential reference checksum.
pub fn reference_checksum(params: &AppParams) -> u64 {
    let d = dims(params.scale);
    let side = d.side;
    let mut src = initial_grid(params.seed, side);
    let mut dst = vec![0u64; side * side];
    for iter in 0..d.iters {
        for v in src.iter_mut() {
            *v = scramble(*v, iter as u64);
        }
        for r in 0..side {
            for c in 0..side {
                dst[c * side + r] = src[r * side + c];
            }
        }
        std::mem::swap(&mut src, &mut dst);
    }
    let mut sum = 0u64;
    for v in &src {
        sum = sum.wrapping_add(*v);
    }
    mix(0xcbf29ce484222325, sum)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scramble_is_deterministic_and_iter_sensitive() {
        assert_eq!(scramble(7, 0), scramble(7, 0));
        assert_ne!(scramble(7, 0), scramble(7, 1));
    }

    #[test]
    fn initial_matches_reference() {
        let params = AppParams::test(2, Variant::Initial);
        assert_eq!(run(&params).checksum, reference_checksum(&params));
    }

    #[test]
    fn optimized_matches_reference() {
        let params = AppParams::test(2, Variant::Optimized);
        assert_eq!(run(&params).checksum, reference_checksum(&params));
    }

    #[test]
    fn all_to_all_traffic_grows_with_nodes() {
        let two = run(&AppParams::test(2, Variant::Optimized));
        let four = run(&AppParams::test(4, Variant::Optimized));
        assert!(
            four.stats.pages_sent > two.stats.pages_sent,
            "transpose traffic should grow: {} vs {}",
            four.stats.pages_sent,
            two.stats.pages_sent
        );
    }
}
