//! Criterion bench: host-side throughput of the fault/consistency path.

use criterion::{criterion_group, criterion_main, Criterion};
use dex_core::{Cluster, ClusterConfig};

fn fault_paths(c: &mut Criterion) {
    c.bench_function("simulate_200_pingpong_faults", |b| {
        b.iter(|| {
            let cluster = Cluster::new(ClusterConfig::new(2));
            let report = cluster.run(|p| {
                let cell = p.alloc_cell::<u64>(0);
                let round = p.new_barrier(2, "round");
                for node in 0..2u16 {
                    p.spawn(move |ctx| {
                        ctx.migrate(node).expect("node exists");
                        for _ in 0..100 {
                            // Barrier-paced rounds force an ownership
                            // transfer per update on each side.
                            cell.rmw(ctx, |v| v + 1);
                            round.wait(ctx);
                        }
                    });
                }
            });
            assert!(report.stats.total_faults() > 50);
            report.virtual_time
        })
    });

    c.bench_function("simulate_read_replication_512_pages", |b| {
        b.iter(|| {
            let cluster = Cluster::new(ClusterConfig::new(4));
            let report = cluster.run(|p| {
                let data = p.alloc_vec::<u64>(512 * 512, "bulk");
                for node in 1..4u16 {
                    p.spawn(move |ctx| {
                        ctx.migrate(node).expect("node exists");
                        let mut buf = vec![0u64; 512];
                        for page in 0..512 {
                            data.read_slice(ctx, page * 512, &mut buf);
                        }
                    });
                }
            });
            assert!(report.stats.read_faults >= 512);
            report.virtual_time
        })
    });
}

criterion_group!(benches, fault_paths);
criterion_main!(benches);
