//! Criterion bench: host-side throughput of the simulated fabric.

use criterion::{criterion_group, criterion_main, Criterion};
use dex_net::{Fabric, NetConfig, NodeId, WireMessage};
use dex_sim::Engine;

struct Ping(#[allow(dead_code)] u64);

impl WireMessage for Ping {
    fn control_bytes(&self) -> usize {
        16
    }
}

struct Page;

impl WireMessage for Page {
    fn control_bytes(&self) -> usize {
        16
    }
    fn page_bytes(&self) -> usize {
        4096
    }
}

fn messaging(c: &mut Criterion) {
    c.bench_function("simulate_2000_control_messages", |b| {
        b.iter(|| {
            let engine = Engine::new();
            let fabric = Fabric::<Ping>::new(NetConfig::default(), 2);
            let tx = fabric.endpoint(NodeId(0));
            let rx = fabric.endpoint(NodeId(1));
            engine.spawn("tx", move |ctx| {
                for i in 0..2000 {
                    tx.send(ctx, NodeId(1), Ping(i));
                }
            });
            engine.spawn("rx", move |ctx| {
                for _ in 0..2000 {
                    rx.recv(ctx).expect("open");
                }
            });
            engine.run().expect("no deadlock")
        })
    });

    c.bench_function("simulate_500_page_transfers", |b| {
        b.iter(|| {
            let engine = Engine::new();
            let fabric = Fabric::<Page>::new(NetConfig::default(), 2);
            let tx = fabric.endpoint(NodeId(0));
            let rx = fabric.endpoint(NodeId(1));
            engine.spawn("tx", move |ctx| {
                for _ in 0..500 {
                    tx.send(ctx, NodeId(1), Page);
                }
            });
            engine.spawn("rx", move |ctx| {
                for _ in 0..500 {
                    rx.recv(ctx).expect("open");
                }
            });
            engine.run().expect("no deadlock")
        })
    });
}

criterion_group!(benches, messaging);
criterion_main!(benches);
