//! Criterion bench wrapping reduced versions of the paper-figure
//! harnesses, so `cargo bench` exercises every experiment end to end
//! (the full tables come from the `dex-bench` binaries).

use criterion::{criterion_group, criterion_main, Criterion};
use dex_apps::{run_app, AppParams, Variant};

fn figure_harnesses(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig_tables");
    group.sample_size(10);

    // Figure 2, one representative cell per regime.
    for (app, nodes, variant) in [
        ("EP", 2, Variant::Initial),    // scale-ready
        ("KMN", 2, Variant::Optimized), // optimized to scale
        ("FT", 2, Variant::Optimized),  // communication-bound
        ("BP", 2, Variant::Initial),    // bandwidth-bound
    ] {
        group.bench_function(format!("fig2_{app}_{nodes}n_{variant}"), |b| {
            b.iter(|| {
                let mut params = AppParams::test(nodes, variant);
                params.threads_per_node = 4;
                run_app(app, &params).elapsed
            })
        });
    }

    // Table II / Figure 3: migration microbenchmark.
    group.bench_function("table2_migration_microbench", |b| {
        b.iter(|| {
            let cluster = dex_core::Cluster::new(dex_core::ClusterConfig::new(2));
            let report = cluster.run(|p| {
                p.spawn(|ctx| {
                    for _ in 0..5 {
                        ctx.migrate(1).expect("node 1");
                        ctx.migrate_back().expect("origin");
                    }
                });
            });
            assert_eq!(report.migrations.len(), 10);
            report.virtual_time
        })
    });

    // §V-D: fault-cost microbenchmark.
    group.bench_function("pgfault_microbench", |b| {
        b.iter(|| {
            let cluster = dex_core::Cluster::new(dex_core::ClusterConfig::new(2));
            let report = cluster.run(|p| {
                let cell = p.alloc_cell::<u64>(0);
                for node in 0..2u16 {
                    p.spawn(move |ctx| {
                        ctx.migrate(node).expect("node exists");
                        for _ in 0..200 {
                            cell.rmw(ctx, |v| v + 1);
                            ctx.compute_ops(2_000);
                        }
                    });
                }
            });
            report.fault_hist.mean()
        })
    });

    group.finish();
}

criterion_group!(benches, figure_harnesses);
criterion_main!(benches);
