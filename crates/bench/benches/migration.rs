//! Criterion bench: host-side cost of simulating thread migrations.
//!
//! Measures how fast the DES executes migration round trips — the
//! simulator's own performance, not the modeled latency (that is Table
//! II's job).

use criterion::{criterion_group, criterion_main, Criterion};
use dex_core::{Cluster, ClusterConfig};

fn migration_roundtrips(c: &mut Criterion) {
    c.bench_function("simulate_20_migration_roundtrips", |b| {
        b.iter(|| {
            let cluster = Cluster::new(ClusterConfig::new(2));
            let report = cluster.run(|p| {
                p.spawn(|ctx| {
                    for _ in 0..20 {
                        ctx.migrate(1).expect("node 1");
                        ctx.migrate_back().expect("origin");
                    }
                });
            });
            assert_eq!(report.stats.forward_migrations, 20);
            report.virtual_time
        })
    });

    c.bench_function("simulate_fanout_migration_8_nodes", |b| {
        b.iter(|| {
            let cluster = Cluster::new(ClusterConfig::new(8));
            let report = cluster.run(|p| {
                for t in 0..16u16 {
                    p.spawn(move |ctx| {
                        ctx.migrate(1 + t % 7).expect("node exists");
                        ctx.compute_ops(1_000);
                        ctx.migrate_back().expect("origin");
                    });
                }
            });
            assert_eq!(report.stats.forward_migrations, 16);
            report.virtual_time
        })
    });
}

criterion_group!(benches, migration_roundtrips);
criterion_main!(benches);
