//! Criterion bench: the ownership-directory radix tree against the
//! standard-library BTreeMap on page-number-shaped keys.

use std::collections::BTreeMap;

use criterion::{criterion_group, criterion_main, Criterion};
use dex_os::RadixTree;

fn keys() -> Vec<u64> {
    // Page numbers of a 64 MiB heap starting at 0x1000_0000, plus sparse
    // stack/TLS pages — the shape the directory actually indexes.
    let mut keys: Vec<u64> = (0x10000..0x14000u64).collect();
    keys.extend((0..64).map(|i| 0x7_f000_0000 / 4096 + i * 16));
    keys
}

fn radix_vs_btree(c: &mut Criterion) {
    let keys = keys();

    c.bench_function("radix_insert_get_16k_pages", |b| {
        b.iter(|| {
            let mut tree = RadixTree::new();
            for &k in &keys {
                tree.insert(k, k);
            }
            let mut sum = 0u64;
            for &k in &keys {
                sum = sum.wrapping_add(*tree.get(k).expect("present"));
            }
            sum
        })
    });

    c.bench_function("btree_insert_get_16k_pages", |b| {
        b.iter(|| {
            let mut tree = BTreeMap::new();
            for &k in &keys {
                tree.insert(k, k);
            }
            let mut sum = 0u64;
            for &k in &keys {
                sum = sum.wrapping_add(*tree.get(&k).expect("present"));
            }
            sum
        })
    });

    c.bench_function("radix_iter_16k_pages", |b| {
        let tree: RadixTree<u64> = keys.iter().map(|&k| (k, k)).collect();
        b.iter(|| tree.iter().map(|(_, v)| *v).sum::<u64>())
    });
}

criterion_group!(benches, radix_vs_btree);
criterion_main!(benches);
