//! Sharded-directory ablation: single-origin homes vs two-hop
//! owner-forwarded grants.
//!
//! The workload ping-pongs exclusive ownership of an 8-page region
//! between two remote nodes while a third node keeps pulling read
//! replicas, so almost every fault is a three-party affair: the
//! requester, the page's home, and the current owner are all distinct.
//! Under the classic single-origin directory every such fault pays four
//! message legs (requester → origin → owner → origin → requester); with
//! sharded homes and owner forwarding the grant takes the two-hop path
//! (requester → home → owner → requester) and the read replicas are
//! revoked with batched invalidations, so the remote-fault critical
//! path — and the whole run — must come out shorter.

use dex_bench::render_table;
use dex_core::{Cluster, ClusterConfig, RunReport};

const PAGES: usize = 8;

fn pingpong(config: ClusterConfig, rounds: usize) -> RunReport {
    let cluster = Cluster::new(dex_bench::with_spans_if_requested(config));
    cluster.run(|p| {
        let v = p.alloc_vec_aligned::<u64>(PAGES * 512, "shard_pingpong");
        p.spawn(move |ctx| {
            ctx.set_site("shard.pingpong");
            ctx.migrate(1).expect("node 1 exists");
            for page in 0..PAGES {
                v.set(ctx, page * 512, page as u64);
            }
            for round in 0..rounds {
                // Spread read replicas from a third node...
                ctx.migrate(3).expect("node 3 exists");
                for page in 0..PAGES {
                    let _ = v.get(ctx, page * 512);
                }
                // ...then revoke them with an exclusive pass from the
                // other writer, bouncing ownership 1 <-> 2.
                let writer = if round % 2 == 0 { 2 } else { 1 };
                ctx.migrate(writer).expect("writer node exists");
                for page in 0..PAGES {
                    v.set(ctx, page * 512, round as u64);
                }
            }
        });
    })
}

fn main() {
    println!("sharded-directory ablation: classic vs two-hop grants\n");
    let rounds = if dex_bench::smoke() { 4 } else { 32 };

    let classic = pingpong(ClusterConfig::new(4), rounds);
    let sharded = pingpong(ClusterConfig::new(4).with_directory_shards(4), rounds);
    dex_bench::write_spans("shard_classic", &classic).expect("write span dump");
    dex_bench::write_spans("shard", &sharded).expect("write span dump");

    let row = |name: &str, r: &RunReport| {
        let c = &r.process().stats.counters;
        vec![
            name.to_string(),
            format!("{:.2}", r.virtual_time.as_micros_f64() / 1_000.0),
            format!("{:.1}", r.fault_hist.percentile(50.0).as_micros_f64()),
            format!("{:.1}", r.fault_hist.percentile(99.0).as_micros_f64()),
            format!("{}", r.stats.msgs_sent),
            format!("{}", c.get("protocol.forwards")),
            format!("{}", c.get("protocol.invalidate_batches")),
        ]
    };
    println!(
        "{}",
        render_table(
            &[
                "directory",
                "vtime(ms)",
                "fault p50(us)",
                "fault p99(us)",
                "msgs",
                "forwards",
                "inv batches"
            ],
            &[
                row("single-origin", &classic),
                row("sharded 2-hop", &sharded)
            ],
        )
    );

    // Shape checks: the forwarded path must actually run, and it must
    // shorten the remote-fault critical path end to end.
    let counters = &sharded.process().stats.counters;
    assert!(counters.get("protocol.forwards") >= 1, "grants forwarded");
    assert!(
        counters.get("protocol.invalidate_batches") >= 1,
        "replica revocation batched"
    );
    assert_eq!(
        classic.process().stats.counters.get("protocol.forwards"),
        0,
        "classic directory never forwards"
    );
    assert!(
        sharded.fault_hist.percentile(50.0) < classic.fault_hist.percentile(50.0),
        "two-hop grants shorten the median remote fault"
    );
    assert!(
        sharded.virtual_time < classic.virtual_time,
        "sharded run finishes sooner end to end"
    );
    let speedup = classic.virtual_time.as_nanos() as f64 / sharded.virtual_time.as_nanos() as f64;
    println!("\nshape checks passed: two-hop path is {speedup:.2}x faster end to end");

    dex_bench::BenchResult::from_report("shard", &sharded)
        .with_extra("classic_virtual_time_ns", classic.virtual_time.as_nanos())
        .with_extra(
            "classic_fault_p50_ns",
            classic.fault_hist.percentile(50.0).as_nanos(),
        )
        .with_extra("forwards", counters.get("protocol.forwards"))
        .with_extra(
            "forwards_serviced",
            counters.get("protocol.forwards_serviced"),
        )
        .with_extra(
            "invalidate_batches",
            counters.get("protocol.invalidate_batches"),
        )
        .write()
        .expect("write bench result");
}
