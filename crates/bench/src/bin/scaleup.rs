//! §V-B first paragraph — inherent scalability on a scale-up machine.
//!
//! The paper first checks that the applications are inherently scalable by
//! running them on an 8-socket, 224-core Xeon Platinum box: completion
//! time is inversely proportional to thread count. This harness models
//! that machine (one node, 224 cores, proportionally larger memory
//! bandwidth) and sweeps the thread count on an EP-style kernel.

use dex_apps::{run_app_with_config, AppParams, Variant};
use dex_bench::render_table;
use dex_core::{Cluster, ClusterConfig, CostModel};

fn main() {
    let smoke = dex_bench::smoke();
    let total_ops: u64 = if smoke { 20_000_000 } else { 200_000_000 };
    let thread_counts: &[usize] = if smoke {
        &[1, 4, 16]
    } else {
        &[1, 2, 4, 8, 16, 32, 64]
    };
    println!("Scale-up baseline: one 224-core machine, {total_ops} total ops\n");

    let mut rows = Vec::new();
    let mut first_time = None;
    for &threads in thread_counts {
        let cost = CostModel {
            cores_per_node: 224,
            // Xeon Platinum 8180 x8: ~6x the memory bandwidth of the
            // rack nodes.
            mem_bandwidth_bytes_per_sec: 120_000_000_000,
            ..CostModel::default()
        };
        let config = ClusterConfig::new(1).with_cost(cost);
        let cluster = Cluster::new(config);
        let report = cluster.run(|p| {
            let ops_per_thread = total_ops / threads as u64;
            for t in 0..threads {
                let _ = t;
                p.spawn(move |ctx| {
                    // Chunked compute, like a real parallel kernel.
                    for _ in 0..64 {
                        ctx.compute_ops(ops_per_thread / 64);
                    }
                });
            }
        });
        let secs = report.virtual_time.as_secs_f64();
        let t1 = *first_time.get_or_insert(secs);
        rows.push(vec![
            format!("{threads}"),
            format!("{:.2}", secs * 1e3),
            format!("{:.2}", t1 / secs),
            format!("{:.2}", t1 / secs / threads as f64),
        ]);
    }
    println!(
        "{}",
        render_table(&["threads", "time(ms)", "speedup", "efficiency"], &rows)
    );

    // The same sweep on a real application (EP, unmodified, one node).
    println!("\nEP (NPB) on the scale-up machine:\n");
    let mut rows = Vec::new();
    let mut first = None;
    let mut representative = None;
    for &threads in thread_counts {
        let mut params = AppParams::new(1, Variant::Baseline);
        params.threads_per_node = threads;
        let cost = CostModel {
            cores_per_node: 224,
            mem_bandwidth_bytes_per_sec: 120_000_000_000,
            ..CostModel::default()
        };
        let config = ClusterConfig::new(1).with_cost(cost);
        let result = run_app_with_config("EP", &params, config);
        let secs = result.elapsed.as_secs_f64();
        let t1 = *first.get_or_insert(secs);
        rows.push(vec![
            format!("{threads}"),
            format!("{:.2}", secs * 1e3),
            format!("{:.2}", t1 / secs),
            format!("{:.2}", t1 / secs / threads as f64),
        ]);
        representative = Some((threads, result));
    }
    println!(
        "{}",
        render_table(&["threads", "time(ms)", "speedup", "efficiency"], &rows)
    );
    println!("Paper: completion times were inversely proportional to thread");
    println!("count for all applications, so the workloads are scale-ready.");

    let (threads, rep) = representative.expect("the sweep ran");
    dex_bench::BenchResult::from_report("scaleup", &rep.report)
        .with_extra("threads", threads as u64)
        .with_extra("total_ops", total_ops)
        .write()
        .expect("write bench result");
}
