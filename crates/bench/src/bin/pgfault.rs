//! §V-D — page-fault handling overhead microbenchmark.
//!
//! The paper forks two threads, relocates one to a remote node, and has
//! both continually update a single global variable so the page shuttles
//! between the nodes for exclusive ownership. It reports a *bimodal*
//! distribution: fast faults around 19.3 µs (27.5 % of faults), and a slow
//! mode around 158.8 µs when a conflicting in-flight transaction forces a
//! back-off and retry; the messaging layer takes 13.6 µs to move a 4 KiB
//! page end to end.
//!
//! The two-party run exercises the fast mode; conflicting transactions
//! need a third contender, so the harness also runs a three-node variant
//! to populate the slow mode.

use dex_bench::render_table;
use dex_core::{Cluster, ClusterConfig};
use dex_sim::SimDuration;

fn pingpong(nodes: usize, writers_on: &[u16], rounds: u64) -> dex_core::RunReport {
    pingpong_spaced(nodes, writers_on, rounds, 2_000)
}

fn pingpong_spaced(
    nodes: usize,
    writers_on: &[u16],
    rounds: u64,
    ops_between: u64,
) -> dex_core::RunReport {
    let cluster = Cluster::new(ClusterConfig::new(nodes));
    cluster.run(|p| {
        let cell = p.alloc_cell_tagged::<u64>(0, "global_variable");
        for &node in writers_on {
            p.spawn(move |ctx| {
                ctx.set_site("pgfault.update_loop");
                ctx.migrate(node).expect("node exists");
                for _ in 0..rounds {
                    cell.rmw(ctx, |v| v + 1);
                    ctx.compute_ops(ops_between);
                }
            });
        }
    })
}

fn main() {
    println!("§V-D page-fault microbenchmark\n");

    // The paper's setup: one thread at the origin, one at a remote node.
    let two = pingpong(2, &[0, 1], 4_000);
    let h = &two.fault_hist;
    let (fast_n, fast_mean, slow_n, slow_mean) = h.split_at(SimDuration::from_micros(60));
    let total = fast_n + slow_n;
    println!("two nodes, one global variable, {total} protocol faults:");
    let rows = vec![
        vec![
            "fast mode".to_string(),
            format!("{}", fast_n),
            format!("{:.1}%", 100.0 * fast_n as f64 / total as f64),
            format!("{:.1}", fast_mean.as_micros_f64()),
            "19.3".to_string(),
        ],
        vec![
            "slow (retry) mode".to_string(),
            format!("{}", slow_n),
            format!("{:.1}%", 100.0 * slow_n as f64 / total as f64),
            format!("{:.1}", slow_mean.as_micros_f64()),
            "158.8".to_string(),
        ],
    ];
    println!(
        "{}",
        render_table(&["mode", "faults", "share", "mean(us)", "paper(us)"], &rows)
    );

    // Three contending writers force conflicting transactions (retries).
    let three = pingpong_spaced(4, &[1, 2, 3], 2_000, 16_000);
    let h3 = &three.fault_hist;
    let (f3, f3m, s3, s3m) = h3.split_at(SimDuration::from_micros(60));
    let total3 = f3 + s3;
    println!("three remote writers (conflicting transactions), {total3} faults:");
    let rows3 = vec![
        vec![
            "fast mode".to_string(),
            format!("{}", f3),
            format!("{:.1}%", 100.0 * f3 as f64 / total3 as f64),
            format!("{:.1}", f3m.as_micros_f64()),
            "19.3".to_string(),
        ],
        vec![
            "slow (retry) mode".to_string(),
            format!("{}", s3),
            format!("{:.1}%", 100.0 * s3 as f64 / total3 as f64),
            format!("{:.1}", s3m.as_micros_f64()),
            "158.8".to_string(),
        ],
    ];
    println!(
        "{}",
        render_table(
            &["mode", "faults", "share", "mean(us)", "paper(us)"],
            &rows3
        )
    );
    println!(
        "retried fault rounds: {} of {} faults",
        three.stats.retried_faults,
        three.stats.total_faults()
    );

    // Messaging-layer page retrieval time: isolate one remote read fault.
    let probe = {
        let cluster = Cluster::new(ClusterConfig::new(2));
        cluster.run(|p| {
            let v = p.alloc_vec::<u64>(512, "page_data");
            p.spawn(move |ctx| {
                ctx.migrate(1).expect("node 1 exists");
                let _ = v.get(ctx, 0); // one page retrieval
            });
        })
    };
    println!(
        "\nsingle 4 KiB page retrieval (fault entry to fixup): {:.1} us (paper: 13.6 us messaging + handler)",
        probe.fault_hist.mean().as_micros_f64()
    );

    // Shape checks.
    assert!(fast_mean < SimDuration::from_micros(40), "fast mode fast");
    assert!(s3 > 0, "three-way contention produces retries");
    assert!(
        s3m > SimDuration::from_micros(100),
        "retry mode dominated by the back-off"
    );
    println!("\nshape checks passed: bimodal distribution reproduced");

    dex_bench::BenchResult::from_report("pgfault", &two)
        .with_extra("fast_faults", fast_n)
        .with_extra("slow_faults", slow_n)
        .with_extra("contended_retries", three.stats.retried_faults)
        .with_extra("page_retrieval_ns", probe.fault_hist.mean().as_nanos())
        .write()
        .expect("write bench result");
}
