//! Table II — thread-migration latency in microseconds.
//!
//! Reproduces the paper's microbenchmark: a thread repeatedly migrates to
//! a remote node and back; the table reports origin-side, remote-side, and
//! total latency of the first and second forward and backward migrations.

use dex_bench::render_table;
use dex_core::{Cluster, ClusterConfig};
use dex_prof::migration_phases;

fn main() {
    let cluster = Cluster::new(ClusterConfig::new(2).with_spans());
    let report = cluster.run(|p| {
        p.spawn(|ctx| {
            for _ in 0..10 {
                ctx.migrate(1).expect("node 1 exists");
                ctx.migrate_back().expect("origin exists");
            }
        });
    });

    let fwd: Vec<_> = report.migrations.iter().filter(|m| m.forward).collect();
    let bwd: Vec<_> = report.migrations.iter().filter(|m| !m.forward).collect();
    assert!(fwd.len() >= 2 && bwd.len() >= 2, "microbenchmark ran");

    let row = |label: &str, m: &dex_core::MigrationSample, paper: (f64, f64, f64)| {
        vec![
            label.to_string(),
            format!("{:.1}", m.origin_side.as_micros_f64()),
            format!("{:.1}", m.remote_side.as_micros_f64()),
            format!("{:.1}", m.total.as_micros_f64()),
            format!("{:.1}", paper.0),
            format!("{:.1}", paper.1),
            format!("{:.1}", paper.2),
        ]
    };

    println!("Table II: migration latency (microseconds), 10 round trips\n");
    let rows = vec![
        // Paper: 1st fwd origin 12.1, remote 800.0, total 812.1;
        //        2nd fwd origin 6.6, remote 230.0, total 236.6;
        //        backward total 24.7.
        row("forward 1st", fwd[0], (12.1, 800.0, 812.1)),
        row("forward 2nd", fwd[1], (6.6, 230.0, 236.6)),
        row("forward last", fwd[fwd.len() - 1], (6.6, 230.0, 236.6)),
        row("backward 1st", bwd[0], (20.0, 3.0, 24.7)),
        row("backward 2nd", bwd[1], (20.0, 3.0, 24.7)),
    ];
    println!(
        "{}",
        render_table(
            &[
                "migration",
                "origin(us)",
                "remote(us)",
                "total(us)",
                "paper-origin",
                "paper-remote",
                "paper-total"
            ],
            &rows
        )
    );

    // Sanity: repeat migrations must be far cheaper than the first, and
    // backward two orders below forward — the paper's two observations.
    let t1 = fwd[0].total.as_micros_f64();
    let t2 = fwd[1].total.as_micros_f64();
    assert!(
        (0.2..0.4).contains(&(t2 / t1)),
        "2nd/1st forward ratio {:.2} (paper: 0.29)",
        t2 / t1
    );
    assert!(
        bwd[0].total.as_micros_f64() < 40.0,
        "backward stays tens of us"
    );
    println!(
        "\nshape checks passed: 2nd/1st forward = {:.2} (paper 0.29)",
        t2 / t1
    );

    // The same table, reconstructed from *measured spans* rather than
    // the ack-carried phase list: each remote-side phase was timed by
    // its own MigrationPhase span and stitched to the origin's
    // migration span over the wire.
    println!("\nphase breakdown from measured spans (dex-prof):\n");
    let phases = migration_phases(&report.spans);
    let phase_rows: Vec<Vec<String>> = phases
        .iter()
        .map(|p| {
            vec![
                p.label.to_string(),
                p.count.to_string(),
                format!("{:.1}", p.mean_us()),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["phase", "samples", "avg(us)"], &phase_rows)
    );
    let mean = |label: &str| {
        phases
            .iter()
            .find(|p| p.label == label)
            .map(|p| p.mean_us())
            .unwrap_or(0.0)
    };
    // Table II's remote-side shape: worker setup >> fork >> install,
    // and worker reuse is an order of magnitude below setup.
    assert!(
        mean("remote_worker") > mean("thread_fork")
            && mean("thread_fork") > mean("context_install"),
        "measured spans must reproduce the Table II ordering"
    );
    assert!(
        mean("worker_reuse") < mean("remote_worker") / 5.0,
        "reused workers skip the expensive setup"
    );
    println!(
        "span shape checks passed: setup {:.0} us > fork {:.0} us > install {:.0} us, reuse {:.0} us",
        mean("remote_worker"),
        mean("thread_fork"),
        mean("context_install"),
        mean("worker_reuse"),
    );

    dex_bench::BenchResult::from_report("table2", &report)
        .with_extra("forward_migrations", report.stats.forward_migrations)
        .with_extra("backward_migrations", report.stats.backward_migrations)
        .with_extra("first_forward_total_ns", fwd[0].total.as_nanos())
        .with_extra("repeat_forward_total_ns", fwd[1].total.as_nanos())
        .write()
        .expect("write bench result");
}
