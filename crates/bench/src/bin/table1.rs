//! Table I — complexity of applying DEX to existing applications.
//!
//! The paper counts lines of code changed to (a) convert each application
//! to span nodes (inserting migration calls) and (b) optimize it against
//! false page sharing. The reproduction's ports keep both variants in one
//! source file behind the `Variant` switch, so this harness measures the
//! conversion surface directly from the sources: migration-call lines for
//! the initial port, and optimization-conditional lines for the optimized
//! port — the analogue of diffing the paper's patched sources.

use dex_bench::render_table;

struct AppSource {
    name: &'static str,
    model: &'static str,
    regions: &'static str,
    source: &'static str,
    paper_initial: &'static str,
}

const APPS: [AppSource; 8] = [
    AppSource {
        name: "GRP",
        model: "pthread",
        regions: "-",
        source: include_str!("../../../apps/src/grp.rs"),
        paper_initial: "2",
    },
    AppSource {
        name: "KMN",
        model: "pthread",
        regions: "-",
        source: include_str!("../../../apps/src/kmn.rs"),
        paper_initial: "2",
    },
    AppSource {
        name: "BT",
        model: "OpenMP",
        regions: "15",
        source: include_str!("../../../apps/src/bt.rs"),
        paper_initial: "~53 (2.5-4/region)",
    },
    AppSource {
        name: "EP",
        model: "OpenMP",
        regions: "1",
        source: include_str!("../../../apps/src/ep.rs"),
        paper_initial: "2",
    },
    AppSource {
        name: "FT",
        model: "OpenMP",
        regions: "7",
        source: include_str!("../../../apps/src/ft.rs"),
        paper_initial: "~25 (2.5-4/region)",
    },
    AppSource {
        name: "BLK",
        model: "pthread",
        regions: "-",
        source: include_str!("../../../apps/src/blk.rs"),
        paper_initial: "2",
    },
    AppSource {
        name: "BFS",
        model: "pthread",
        regions: "-",
        source: include_str!("../../../apps/src/bfs.rs"),
        paper_initial: "<=12 (incl. libNUMA swap)",
    },
    AppSource {
        name: "BP",
        model: "pthread",
        regions: "-",
        source: include_str!("../../../apps/src/bp.rs"),
        paper_initial: "<=12 (incl. libNUMA swap)",
    },
];

/// Lines inserted to convert the app: the migration calls.
fn conversion_lines(source: &str) -> usize {
    source
        .lines()
        .filter(|l| {
            let l = l.trim();
            !l.starts_with("//")
                && (l.contains("migrate_worker(")
                    || l.contains("migrate_home(")
                    || l.contains(".migrate(")
                    || l.contains(".migrate_back("))
        })
        .count()
}

/// Lines that exist only for the optimized port: everything conditioned on
/// or referencing the optimization switch, plus the page-alignment calls.
fn optimization_lines(source: &str) -> usize {
    source
        .lines()
        .filter(|l| {
            let l = l.trim();
            !l.starts_with("//")
                && (l.contains("optimized")
                    || l.contains("alloc_vec_aligned")
                    || l.contains("alloc_cell_aligned")
                    || l.contains("local_"))
        })
        .count()
}

fn main() {
    println!("Table I: complexity of applying DEX (measured from this repo's ports)\n");
    let mut rows = Vec::new();
    let mut total_initial = 0;
    let mut total_optimized = 0;
    for app in APPS {
        let init = conversion_lines(app.source);
        let opt = optimization_lines(app.source);
        total_initial += init;
        total_optimized += opt;
        rows.push(vec![
            app.name.to_string(),
            app.model.to_string(),
            app.regions.to_string(),
            init.to_string(),
            opt.to_string(),
            app.paper_initial.to_string(),
        ]);
    }
    rows.push(vec![
        "TOTAL".into(),
        "".into(),
        "".into(),
        total_initial.to_string(),
        total_optimized.to_string(),
        "110 added / 42 removed".into(),
    ]);
    println!(
        "{}",
        render_table(
            &[
                "app",
                "threading",
                "regions",
                "migration LoC",
                "optimization LoC",
                "paper initial LoC"
            ],
            &rows
        )
    );
    println!("Paper: converting all eight apps touched ~1.1% of their source");
    println!("(110 lines added, 42 removed); optimizing added 246 more lines.");
    println!("This table counts the same two surfaces in the Rust ports: the");
    println!("inserted migration calls and the optimization-conditional lines.");

    // The defining property of Table I: conversion is a handful of lines
    // per application.
    for app in APPS {
        let lines = conversion_lines(app.source);
        assert!(
            (1..=8).contains(&lines),
            "{}: conversion should be a few lines, got {lines}",
            app.name
        );
    }
    println!("\nshape check passed: every app converts with <= 8 migration lines");

    // Table I is a static source measurement: no cluster runs, so the
    // run-shaped fields stay zero and the line counts ride in `extra`.
    dex_bench::BenchResult {
        name: "table1".into(),
        ..Default::default()
    }
    .with_extra("migration_loc", total_initial as u64)
    .with_extra("optimization_loc", total_optimized as u64)
    .write()
    .expect("write bench result");
}
