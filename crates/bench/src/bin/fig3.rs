//! Figure 3 — breakdown of migration latency at the remote node.
//!
//! The paper's figure shows that creating the per-process remote worker
//! dominates the first migration (620 µs of the 800 µs remote side); later
//! migrations skip it. This harness prints the per-phase breakdown
//! captured in the migration acknowledgments.

use dex_bench::render_table;
use dex_core::{Cluster, ClusterConfig, SpanKind};

fn main() {
    let cluster = Cluster::new(ClusterConfig::new(2).with_spans());
    let report = cluster.run(|p| {
        p.spawn(|ctx| {
            for _ in 0..3 {
                ctx.migrate(1).expect("node 1 exists");
                ctx.migrate_back().expect("origin exists");
            }
        });
    });

    let fwd: Vec<_> = report.migrations.iter().filter(|m| m.forward).collect();
    println!("Figure 3: remote-side phases of forward migrations (microseconds)\n");

    // Collect the union of phase names in appearance order.
    let mut phases: Vec<&'static str> = Vec::new();
    for m in &fwd {
        for (name, _) in &m.phases {
            if !phases.contains(name) {
                phases.push(name);
            }
        }
    }
    let mut header = vec!["migration"];
    header.extend(phases.iter().copied());
    header.push("remote total");

    let mut rows = Vec::new();
    for (i, m) in fwd.iter().enumerate() {
        let mut row = vec![format!("#{}", i + 1)];
        for phase in &phases {
            let v = m
                .phases
                .iter()
                .find(|(n, _)| n == phase)
                .map(|(_, d)| format!("{:.1}", d.as_micros_f64()))
                .unwrap_or_else(|| "-".to_string());
            row.push(v);
        }
        row.push(format!("{:.1}", m.remote_side.as_micros_f64()));
        rows.push(row);
    }
    println!("{}", render_table(&header, &rows));

    // The paper's claim: the remote worker accounts for ~77% of the first
    // migration's remote side and is absent afterwards.
    let first = &fwd[0];
    let worker = first
        .phases
        .iter()
        .find(|(n, _)| *n == "remote_worker")
        .map(|(_, d)| d.as_micros_f64())
        .expect("first migration creates the remote worker");
    let share = worker / first.remote_side.as_micros_f64();
    assert!(
        (0.70..0.85).contains(&share),
        "remote-worker share {share:.2} (paper: 620/800 = 0.775)"
    );
    assert!(
        fwd[1..]
            .iter()
            .all(|m| m.phases.iter().all(|(n, _)| *n != "remote_worker")),
        "later migrations reuse the worker"
    );
    println!(
        "\nshape checks passed: remote worker = {:.0}% of first migration (paper 77.5%)",
        share * 100.0
    );

    // Cross-check the ack-carried breakdown against the measured span
    // layer: every phase the ack reported must have been timed by a
    // MigrationPhase span of the same duration.
    let mut span_total = 0.0f64;
    for m in &fwd {
        for (name, d) in &m.phases {
            let measured = report
                .spans
                .iter()
                .filter(|s| s.kind == SpanKind::MigrationPhase && s.label == *name)
                .map(|s| s.duration().as_micros_f64())
                .sum::<f64>();
            assert!(
                measured >= d.as_micros_f64() - 0.001,
                "phase {name} acked {:.1} us but spans measured {measured:.1} us",
                d.as_micros_f64()
            );
        }
        span_total += m.remote_side.as_micros_f64();
    }
    println!("span cross-check passed: {span_total:.1} us of remote-side work covered by spans");

    dex_bench::BenchResult::from_report("fig3", &report)
        .with_extra("forward_migrations", fwd.len() as u64)
        .with_extra("first_remote_side_ns", fwd[0].remote_side.as_nanos())
        .with_extra(
            "repeat_remote_side_ns",
            fwd.last()
                .expect("at least one migration")
                .remote_side
                .as_nanos(),
        )
        .write()
        .expect("write bench result");
}
