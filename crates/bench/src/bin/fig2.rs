//! Figure 2 — Scalability of applications on DEX.
//!
//! For every application and node count, runs the initial and optimized
//! ports and prints the speedup normalized to the original, unmodified
//! application on a single node (8 threads) — the same presentation as the
//! paper's figure.
//!
//! Usage:
//!
//! ```text
//! cargo run -p dex-bench --release --bin fig2               # all apps, 1..8 nodes
//! cargo run -p dex-bench --release --bin fig2 -- --app KMN  # one app
//! cargo run -p dex-bench --release --bin fig2 -- --quick    # node counts 1,2,4,8
//! cargo run -p dex-bench --release --bin fig2 -- --smoke    # KMN only, 1-2 nodes (CI)
//! ```

use dex_apps::{reference_checksum, run_app, AppParams, Variant, ALL_APPS};
use dex_bench::{arg_flag, arg_value, render_table};

fn main() {
    let smoke = dex_bench::smoke();
    let only = arg_value("--app");
    let node_counts: Vec<usize> = if smoke {
        vec![1, 2]
    } else if arg_flag("--quick") {
        vec![1, 2, 4, 8]
    } else {
        (1..=8).collect()
    };
    let apps: Vec<&str> = if smoke && only.is_none() {
        vec!["KMN"]
    } else {
        ALL_APPS
            .iter()
            .copied()
            .filter(|a| only.as_deref().is_none_or(|o| o.eq_ignore_ascii_case(a)))
            .collect()
    };

    println!("Figure 2: speedup vs unmodified single-node run (8 threads/node)");
    println!("baseline = original application, 1 node; checksums verified per run\n");

    let mut header: Vec<String> = vec!["app".into(), "variant".into()];
    for n in &node_counts {
        header.push(format!("{n}n"));
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();

    let mut rows = Vec::new();
    let mut runs: u64 = 0;
    let mut representative = None;
    let last_n = *node_counts.last().expect("node counts nonempty");
    for app in &apps {
        let baseline = run_app(app, &AppParams::new(1, Variant::Baseline));
        assert_eq!(
            baseline.checksum,
            reference_checksum(app, &baseline.params),
            "{app} baseline checksum mismatch"
        );
        let base = baseline.elapsed.as_secs_f64();
        for variant in [Variant::Initial, Variant::Optimized] {
            let mut row = vec![app.to_string(), variant.to_string()];
            for &n in &node_counts {
                let result = run_app(app, &AppParams::new(n, variant));
                assert_eq!(
                    result.checksum,
                    reference_checksum(app, &result.params),
                    "{app} {variant} @ {n} nodes checksum mismatch"
                );
                row.push(format!("{:.2}", base / result.elapsed.as_secs_f64()));
                runs += 1;
                // The regression-tracked run: the first app's optimized
                // port at the highest node count.
                if app == &apps[0] && variant == Variant::Optimized && n == last_n {
                    representative = Some(result);
                }
            }
            rows.push(row);
            eprintln!("  finished {app} {variant}");
        }
    }
    println!("{}", render_table(&header_refs, &rows));

    let rep = representative.expect("the sweep ran");
    dex_bench::BenchResult::from_report("fig2", &rep.report)
        .with_extra("runs", runs)
        .with_extra("nodes", last_n as u64)
        .write()
        .expect("write bench result");
    println!("Paper shape: EP/BLK/BP scale unmodified (BP super-linearly at 2");
    println!("nodes); optimizing lets GRP, KMN and BT beat one machine; FT and");
    println!("BFS stay communication-bound below 1x (six of eight scale).");
}
