//! Ablation studies of DEX's design choices.
//!
//! Three decisions the paper argues for are toggled here:
//!
//! 1. **Leader–follower fault coalescing** (§III-C) — without it, every
//!    thread faulting on a hot page runs the full protocol itself.
//! 2. **Hybrid RDMA (sink + copy)** (§III-E) — against per-page memory-
//!    region registration and plain VERB sends for page data.
//! 3. **False-sharing optimization** (§IV) — the initial→optimized delta
//!    on the two applications the paper optimizes in most detail.

use dex_apps::{run_app, AppParams, Variant};
use dex_bench::render_table;
use dex_core::{Cluster, ClusterConfig, CostModel};
use dex_net::{NetConfig, RdmaStrategy};
use dex_sim::SimDuration;

/// Hot-page microbenchmark: `threads` threads on one remote node all read
/// a freshly-written page repeatedly.
fn coalescing_run(coalesce: bool) -> dex_core::RunReport {
    let cost = CostModel {
        coalesce_faults: coalesce,
        ..CostModel::default()
    };
    let cluster = Cluster::new(ClusterConfig::new(2).with_cost(cost));
    cluster.run(|p| {
        let data = p.alloc_vec_aligned::<u64>(512, "hot_page");
        let barrier = p.new_barrier(9, "round");
        // A writer at the origin dirties the page each round...
        p.spawn(move |ctx| {
            for round in 0..50u64 {
                data.set(ctx, 0, round);
                barrier.wait(ctx);
                barrier.wait(ctx);
            }
        });
        // ...and eight remote threads all fault on it at once.
        for t in 0..8 {
            p.spawn(move |ctx| {
                ctx.migrate(1).expect("node 1 exists");
                for round in 0..50u64 {
                    barrier.wait(ctx);
                    let v = data.get(ctx, t % 512);
                    assert!(v <= round + 1);
                    barrier.wait(ctx);
                }
            });
        }
    })
}

/// Page-streaming microbenchmark for RDMA strategies: seven remote nodes
/// all pull 512 pages from the origin concurrently, so sender-side CPU
/// occupancy (the cost RDMA offloads) shows up as origin-handler
/// serialization.
fn rdma_run(strategy: RdmaStrategy) -> SimDuration {
    let net = NetConfig {
        rdma_strategy: strategy,
        ..NetConfig::default()
    };
    let cluster = Cluster::new(ClusterConfig::new(8).with_net(net));
    let report = cluster.run(|p| {
        let data = p.alloc_vec::<u64>(512 * 512, "bulk"); // 512 pages
        for node in 1..8u16 {
            p.spawn(move |ctx| {
                ctx.migrate(node).expect("node exists");
                let mut buf = vec![0u64; 512];
                for page in 0..512 {
                    data.read_slice(ctx, page * 512, &mut buf);
                }
            });
        }
    });
    report.virtual_time
}

fn main() {
    println!("Ablation 1: leader-follower fault coalescing (8 threads, hot page)\n");
    let coalesced = coalescing_run(true);
    let (t_on, faults_on) = (coalesced.virtual_time, coalesced.stats.total_faults());
    let uncoalesced = coalescing_run(false);
    let (t_off, faults_off) = (uncoalesced.virtual_time, uncoalesced.stats.total_faults());
    println!(
        "{}",
        render_table(
            &["coalescing", "virtual time", "protocol faults"],
            &[
                vec!["on (DEX)".into(), format!("{t_on}"), faults_on.to_string()],
                vec!["off".into(), format!("{t_off}"), faults_off.to_string()],
            ]
        )
    );
    assert!(
        faults_on < faults_off,
        "coalescing must absorb duplicate faults: {faults_on} vs {faults_off}"
    );

    println!("\nAblation 2: page-transfer strategy (512-page remote stream)\n");
    let sink = rdma_run(RdmaStrategy::SinkCopy);
    let reg = rdma_run(RdmaStrategy::PerPageRegistration);
    let verb = rdma_run(RdmaStrategy::VerbOnly);
    println!(
        "{}",
        render_table(
            &["strategy", "virtual time"],
            &[
                vec!["RDMA sink + copy (DEX)".into(), format!("{sink}")],
                vec!["per-page MR registration".into(), format!("{reg}")],
                vec!["VERB only".into(), format!("{verb}")],
            ]
        )
    );
    assert!(
        sink < reg,
        "the hybrid must beat per-page registration: {sink} vs {reg}"
    );
    assert!(
        sink < verb,
        "the hybrid must beat VERB under concurrency: {sink} vs {verb}"
    );

    println!("\nAblation 3: false-sharing optimization delta (4 nodes)\n");
    let apps: &[&str] = if dex_bench::smoke() {
        &["GRP"]
    } else {
        &["GRP", "KMN"]
    };
    let mut rows = Vec::new();
    for &app in apps {
        let base = run_app(app, &AppParams::new(1, Variant::Baseline))
            .elapsed
            .as_secs_f64();
        let initial = run_app(app, &AppParams::new(4, Variant::Initial));
        let optimized = run_app(app, &AppParams::new(4, Variant::Optimized));
        rows.push(vec![
            app.to_string(),
            format!("{:.2}x", base / initial.elapsed.as_secs_f64()),
            format!("{:.2}x", base / optimized.elapsed.as_secs_f64()),
            initial.stats.write_faults.to_string(),
            optimized.stats.write_faults.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "app",
                "initial speedup",
                "optimized speedup",
                "initial wf",
                "optimized wf"
            ],
            &rows
        )
    );
    println!("\nAblation 4: zero-page grant optimization (first-touch writes)\n");
    let (t_zp_off, pages_off) = zero_page_run(false);
    let (t_zp_on, pages_on) = zero_page_run(true);
    println!(
        "{}",
        render_table(
            &[
                "zero-page optimization",
                "virtual time",
                "page payloads sent"
            ],
            &[
                vec![
                    "off (stock kernel)".into(),
                    format!("{t_zp_off}"),
                    pages_off.to_string()
                ],
                vec!["on".into(), format!("{t_zp_on}"), pages_on.to_string()],
            ]
        )
    );
    assert!(
        pages_on < pages_off / 4,
        "zero-page grants avoid the transfers: {pages_on} vs {pages_off}"
    );
    assert!(t_zp_on < t_zp_off);

    println!("\nall ablation shape checks passed");

    // Regression-track the coalescing microbenchmark (the pure-protocol
    // run) and carry the other studies' headline numbers as extras.
    dex_bench::BenchResult::from_report("ablation", &coalesced)
        .with_extra("uncoalesced_faults", faults_off)
        .with_extra("rdma_sink_ns", sink.as_nanos())
        .with_extra("rdma_verb_ns", verb.as_nanos())
        .with_extra("zero_page_pages_sent", pages_on)
        .with_extra("stock_pages_sent", pages_off)
        .write()
        .expect("write bench result");
}

/// First-touch write microbenchmark: a remote thread writes 256 fresh
/// pages the origin never materialized.
fn zero_page_run(enabled: bool) -> (SimDuration, u64) {
    let cost = CostModel {
        zero_page_optimization: enabled,
        ..CostModel::default()
    };
    let cluster = Cluster::new(ClusterConfig::new(2).with_cost(cost));
    let report = cluster.run(|p| {
        let data = p.alloc_vec::<u64>(256 * 512, "fresh");
        p.spawn(move |ctx| {
            ctx.migrate(1).expect("node 1 exists");
            let chunk = vec![7u64; 512];
            for page in 0..256 {
                data.write_slice(ctx, page * 512, &chunk);
            }
        });
    });
    (report.virtual_time, report.stats.pages_sent)
}
