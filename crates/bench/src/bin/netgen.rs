//! Network-generation study — quantifying the paper's motivation (§II).
//!
//! The paper argues classic DSM failed because 1980s/90s networks were
//! "several orders of magnitude" slower than local memory, and that
//! modern interconnects (InfiniBand, Gen-Z class) change the answer. This
//! harness runs the same optimized applications on the same cluster while
//! sweeping the fabric across four generations, showing where the
//! transparent-DSM approach crosses from hopeless to profitable.
//!
//! ```text
//! cargo run -p dex-bench --release --bin netgen
//! ```

use dex_apps::{reference_checksum, run_app, AppParams, Variant};
use dex_bench::render_table;
use dex_net::NetConfig;

fn main() {
    let nodes = 4;
    let fabrics: [(&str, NetConfig); 4] = [
        ("100 Mb Ethernet ('90s DSM era)", NetConfig::ethernet_100m()),
        ("10 Gb Ethernet (no RDMA)", NetConfig::ethernet_10g()),
        (
            "56 Gb InfiniBand (paper testbed)",
            NetConfig::infiniband_56g(),
        ),
        (
            "400 Gb Gen-Z class (\u{a7}II outlook)",
            NetConfig::next_gen_400g(),
        ),
    ];

    println!("Network-generation study: optimized apps, {nodes} nodes, speedup vs");
    println!("the unmodified single-node run, across four fabric generations\n");

    let apps: &[&str] = if dex_bench::smoke() {
        &["KMN"]
    } else {
        &["KMN", "EP", "BLK"]
    };
    let mut rows = Vec::new();
    let mut representative = None;
    for app in apps {
        let base = run_app(app, &AppParams::new(1, Variant::Baseline))
            .elapsed
            .as_secs_f64();
        let mut row = vec![app.to_string()];
        for (_, net) in &fabrics {
            let params = AppParams::new(nodes, Variant::Optimized);
            let config = params.cluster_config().with_net(net.clone());
            // Run through the cluster built with the custom fabric.
            let result = run_with_net(app, &params, config);
            row.push(format!("{:.2}", base / result.elapsed.as_secs_f64()));
            // Regression-track the first app on the paper's testbed fabric.
            if app == &apps[0] && std::ptr::eq(net, &fabrics[2].1) {
                representative = Some(result);
            }
        }
        rows.push(row);
        eprintln!("  finished {app}");
    }

    let header: Vec<&str> = std::iter::once("app")
        .chain(fabrics.iter().map(|(name, _)| *name))
        .collect();
    println!("{}", render_table(&header, &rows));
    println!("Reading: on the '90s fabric every distributed run loses badly to one");
    println!("machine — the paper's explanation for why classic DSM was abandoned.");
    println!("The crossover arrives with RDMA-class networks, and the headroom");
    println!("keeps growing with the next generation.");

    let rep = representative.expect("the sweep ran");
    dex_bench::BenchResult::from_report("netgen", &rep.report)
        .with_extra("nodes", nodes as u64)
        .write()
        .expect("write bench result");
}

/// Runs `app` at `params` with a custom fabric, verifying correctness.
fn run_with_net(
    app: &str,
    params: &AppParams,
    config: dex_core::ClusterConfig,
) -> dex_apps::AppResult {
    let result = dex_apps::run_app_with_config(app, params, config);
    assert_eq!(
        result.checksum,
        reference_checksum(app, params),
        "{app} must stay correct on every fabric"
    );
    result
}
