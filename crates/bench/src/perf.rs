//! The machine-readable perf-regression schema.
//!
//! Every bench binary distills its run into one [`BenchResult`] and
//! writes it as `BENCH_<name>.json` (see [`BenchResult::write`]), all in
//! one stable schema so `dex-check perf` can diff any run against the
//! committed baselines with tolerance bands:
//!
//! ```json
//! {
//!   "schema": "dex-bench v1",
//!   "name": "table2",
//!   "virtual_time_ns": 2913000,
//!   "read_faults": 3,
//!   "write_faults": 10,
//!   "retried_faults": 0,
//!   "msgs_sent": 40,
//!   "bytes_sent": 42440,
//!   "fault_p50_ns": 19300,
//!   "fault_p99_ns": 158800,
//!   "extra": { "forward_migrations": 10 }
//! }
//! ```
//!
//! The simulator is deterministic, so the numbers are exact per commit;
//! the tolerance band in `dex-check perf` absorbs intentional evolution
//! of the cost model and protocol, not run-to-run noise. The JSON is
//! hand-rolled (no serde in the offline build): all values are `u64`
//! except `schema`/`name`, and `extra` is a flat string→u64 object.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use dex_core::RunReport;

/// Schema identifier carried by every result file.
pub const BENCH_SCHEMA: &str = "dex-bench v1";

/// One bench binary's distilled, machine-comparable result.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BenchResult {
    /// Bench binary name (`table2`, `fig2`, ...).
    pub name: String,
    /// Virtual time of the representative run, nanoseconds.
    pub virtual_time_ns: u64,
    /// Read faults entering the protocol.
    pub read_faults: u64,
    /// Write faults entering the protocol.
    pub write_faults: u64,
    /// Fault rounds retried after conflicting transactions.
    pub retried_faults: u64,
    /// Messages sent on the fabric.
    pub msgs_sent: u64,
    /// Total bytes sent on the fabric.
    pub bytes_sent: u64,
    /// Median protocol-fault handling latency, nanoseconds.
    pub fault_p50_ns: u64,
    /// 99th-percentile protocol-fault handling latency, nanoseconds.
    pub fault_p99_ns: u64,
    /// Bench-specific scalars (loop counts, ablation deltas, ...).
    pub extra: BTreeMap<String, u64>,
}

impl BenchResult {
    /// Distills `report` into the common schema under `name`.
    pub fn from_report(name: &str, report: &RunReport) -> Self {
        BenchResult {
            name: name.to_string(),
            virtual_time_ns: report.virtual_time.as_nanos(),
            read_faults: report.stats.read_faults,
            write_faults: report.stats.write_faults,
            retried_faults: report.stats.retried_faults,
            msgs_sent: report.stats.msgs_sent,
            bytes_sent: report.stats.bytes_sent,
            fault_p50_ns: report.fault_hist.percentile(50.0).as_nanos(),
            fault_p99_ns: report.fault_hist.percentile(99.0).as_nanos(),
            extra: BTreeMap::new(),
        }
    }

    /// Adds a bench-specific scalar.
    #[must_use]
    pub fn with_extra(mut self, key: &str, value: u64) -> Self {
        self.extra.insert(key.to_string(), value);
        self
    }

    /// All numeric fields as `(label, value)` pairs — the comparison
    /// surface of `dex-check perf`. Extras are prefixed `extra.`.
    pub fn numeric_fields(&self) -> Vec<(String, u64)> {
        let mut fields = vec![
            ("virtual_time_ns".to_string(), self.virtual_time_ns),
            ("read_faults".to_string(), self.read_faults),
            ("write_faults".to_string(), self.write_faults),
            ("retried_faults".to_string(), self.retried_faults),
            ("msgs_sent".to_string(), self.msgs_sent),
            ("bytes_sent".to_string(), self.bytes_sent),
            ("fault_p50_ns".to_string(), self.fault_p50_ns),
            ("fault_p99_ns".to_string(), self.fault_p99_ns),
        ];
        for (k, v) in &self.extra {
            fields.push((format!("extra.{k}"), *v));
        }
        fields
    }

    /// Serializes into the stable JSON schema (keys in fixed order).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"{BENCH_SCHEMA}\",");
        let _ = writeln!(out, "  \"name\": \"{}\",", json_escape(&self.name));
        for (key, value) in [
            ("virtual_time_ns", self.virtual_time_ns),
            ("read_faults", self.read_faults),
            ("write_faults", self.write_faults),
            ("retried_faults", self.retried_faults),
            ("msgs_sent", self.msgs_sent),
            ("bytes_sent", self.bytes_sent),
            ("fault_p50_ns", self.fault_p50_ns),
            ("fault_p99_ns", self.fault_p99_ns),
        ] {
            let _ = writeln!(out, "  \"{key}\": {value},");
        }
        out.push_str("  \"extra\": {");
        for (i, (k, v)) in self.extra.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    \"{}\": {v}", json_escape(k));
        }
        if !self.extra.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }

    /// Parses the JSON written by [`BenchResult::to_json`]. Rejects
    /// files with a missing or different `schema`.
    pub fn parse_json(text: &str) -> Result<Self, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let mut result = BenchResult::default();
        let mut saw_schema = false;
        p.expect(b'{')?;
        loop {
            if p.peek()? == b'}' {
                p.expect(b'}')?;
                break;
            }
            let key = p.string()?;
            p.expect(b':')?;
            match key.as_str() {
                "schema" => {
                    let v = p.string()?;
                    if v != BENCH_SCHEMA {
                        return Err(format!(
                            "unrecognized schema {v:?} (expected {BENCH_SCHEMA:?})"
                        ));
                    }
                    saw_schema = true;
                }
                "name" => result.name = p.string()?,
                "virtual_time_ns" => result.virtual_time_ns = p.number()?,
                "read_faults" => result.read_faults = p.number()?,
                "write_faults" => result.write_faults = p.number()?,
                "retried_faults" => result.retried_faults = p.number()?,
                "msgs_sent" => result.msgs_sent = p.number()?,
                "bytes_sent" => result.bytes_sent = p.number()?,
                "fault_p50_ns" => result.fault_p50_ns = p.number()?,
                "fault_p99_ns" => result.fault_p99_ns = p.number()?,
                "extra" => {
                    p.expect(b'{')?;
                    loop {
                        if p.peek()? == b'}' {
                            p.pos += 1;
                            break;
                        }
                        let k = p.string()?;
                        p.expect(b':')?;
                        let v = p.number()?;
                        result.extra.insert(k, v);
                        if p.peek()? == b',' {
                            p.pos += 1;
                        }
                    }
                }
                other => return Err(format!("unknown field {other:?}")),
            }
            if p.peek()? == b',' {
                p.pos += 1;
            }
        }
        if !saw_schema {
            return Err("missing `schema` field".to_string());
        }
        if result.name.is_empty() {
            return Err("missing `name` field".to_string());
        }
        Ok(result)
    }

    /// The conventional file name, `BENCH_<name>.json`.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.name)
    }

    /// Writes the result into the directory named by `DEX_BENCH_OUT`
    /// (default: current directory) and notes the path on stderr.
    pub fn write(&self) -> std::io::Result<std::path::PathBuf> {
        let dir = std::env::var("DEX_BENCH_OUT").unwrap_or_else(|_| ".".to_string());
        let dir = std::path::Path::new(&dir);
        std::fs::create_dir_all(dir)?;
        let path = dir.join(self.file_name());
        std::fs::write(&path, self.to_json())?;
        eprintln!("wrote {}", path.display());
        Ok(path)
    }
}

/// `true` when the bench should run its reduced smoke configuration:
/// `--smoke` on the command line or `DEX_BENCH_SMOKE` set (non-`0`).
pub fn smoke() -> bool {
    crate::arg_flag("--smoke") || std::env::var("DEX_BENCH_SMOKE").is_ok_and(|v| v != "0")
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Minimal scanner for the subset of JSON the schema uses: one object
/// of string keys mapping to strings, unsigned integers, or one nested
/// flat object.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        let got = self.peek()?;
        if got != b {
            return Err(format!(
                "expected `{}` at byte {}, found `{}`",
                b as char, self.pos, got as char
            ));
        }
        self.pos += 1;
        Ok(())
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| format!("bad \\u escape: {e}"))?;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("unknown string escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<u64, String> {
        self.skip_ws();
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(format!("expected a number at byte {start}"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .unwrap()
            .parse()
            .map_err(|e| format!("bad number: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchResult {
        BenchResult {
            name: "table2".into(),
            virtual_time_ns: 2_913_000,
            read_faults: 3,
            write_faults: 10,
            retried_faults: 0,
            msgs_sent: 40,
            bytes_sent: 42_440,
            fault_p50_ns: 19_300,
            fault_p99_ns: 158_800,
            extra: [("forward_migrations".to_string(), 10)].into(),
        }
    }

    #[test]
    fn json_round_trips() {
        let r = sample();
        let parsed = BenchResult::parse_json(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
        // Empty extras too.
        let mut bare = sample();
        bare.extra.clear();
        assert_eq!(BenchResult::parse_json(&bare.to_json()).unwrap(), bare);
    }

    #[test]
    fn schema_and_shape_are_enforced() {
        assert!(BenchResult::parse_json("").is_err());
        assert!(BenchResult::parse_json("{}").is_err(), "schema required");
        let wrong = sample().to_json().replace("dex-bench v1", "dex-bench v9");
        assert!(BenchResult::parse_json(&wrong).is_err());
        let unknown = sample().to_json().replace("msgs_sent", "zap_zap");
        assert!(BenchResult::parse_json(&unknown).is_err());
        assert!(BenchResult::parse_json("{\"schema\": \"dex-bench v1\"}").is_err());
    }

    #[test]
    fn numeric_fields_cover_extras() {
        let fields = sample().numeric_fields();
        assert_eq!(fields.len(), 9);
        assert!(fields
            .iter()
            .any(|(k, v)| k == "extra.forward_migrations" && *v == 10));
    }

    #[test]
    fn hostile_names_survive() {
        let mut r = sample();
        r.name = "we\"ird\\name\n".into();
        r.extra.insert("k\ty".into(), 7);
        let parsed = BenchResult::parse_json(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
    }
}
