//! # dex-bench — experiment harnesses for the DEX reproduction
//!
//! One binary per table/figure of the paper:
//!
//! | binary | regenerates |
//! |---|---|
//! | `fig2`    | Figure 2 — scalability of the eight applications, 1→8 nodes, initial vs optimized |
//! | `table1`  | Table I — lines changed to convert and optimize each application |
//! | `table2`  | Table II — forward/backward migration latency, first vs repeat |
//! | `fig3`    | Figure 3 — remote-side breakdown of migration latency |
//! | `pgfault` | §V-D — bimodal page-fault handling cost microbenchmark |
//! | `scaleup` | §V-B — inherent scalability on one large scale-up machine |
//! | `ablation`| design-choice studies: leader–follower, RDMA strategy, optimization deltas |
//!
//! Run any of them with `cargo run -p dex-bench --release --bin <name>`.
//! The `benches/` directory additionally holds criterion benchmarks of the
//! simulator's host-side performance.
//!
//! Every binary also distills its run into a machine-readable
//! `BENCH_<name>.json` result in one stable schema ([`BenchResult`]),
//! written to `DEX_BENCH_OUT` (default: the current directory). The
//! `dex-check perf` subcommand diffs those files against the committed
//! baselines with tolerance bands. `--smoke` (or `DEX_BENCH_SMOKE=1`)
//! selects the reduced configuration the CI gate runs.

#![warn(missing_docs)]

mod perf;

pub use perf::{smoke, BenchResult, BENCH_SCHEMA};

use std::fmt::Write as _;

/// Formats a simple aligned text table: `header` row then `rows`, each a
/// vector of cells. The first column is left-aligned, the rest right.
///
/// # Examples
///
/// ```
/// let t = dex_bench::render_table(
///     &["app", "x1", "x2"],
///     &[vec!["GRP".into(), "1.00".into(), "1.52".into()]],
/// );
/// assert!(t.contains("GRP"));
/// assert!(t.contains("x2"));
/// ```
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    for (i, h) in header.iter().enumerate() {
        if i == 0 {
            let _ = write!(out, "{:<w$}", h, w = widths[i]);
        } else {
            let _ = write!(out, "  {:>w$}", h, w = widths[i]);
        }
    }
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i == 0 {
                let _ = write!(out, "{:<w$}", cell, w = widths[i]);
            } else {
                let _ = write!(out, "  {:>w$}", cell, w = widths[i]);
            }
        }
        out.push('\n');
    }
    out
}

/// Parses `--flag value` style arguments from `std::env::args`.
pub fn arg_value(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
    }
    None
}

/// Returns `true` when `--flag` is present.
pub fn arg_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = render_table(
            &["name", "v"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].starts_with("long-name"));
        assert!(lines[1].chars().all(|c| c == '-'));
    }

    #[test]
    fn arg_helpers_do_not_crash() {
        assert_eq!(arg_value("--definitely-not-set"), None);
        assert!(!arg_flag("--definitely-not-set"));
    }
}
