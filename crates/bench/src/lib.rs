//! # dex-bench — experiment harnesses for the DEX reproduction
//!
//! One binary per table/figure of the paper:
//!
//! | binary | regenerates |
//! |---|---|
//! | `fig2`    | Figure 2 — scalability of the eight applications, 1→8 nodes, initial vs optimized |
//! | `table1`  | Table I — lines changed to convert and optimize each application |
//! | `table2`  | Table II — forward/backward migration latency, first vs repeat |
//! | `fig3`    | Figure 3 — remote-side breakdown of migration latency |
//! | `pgfault` | §V-D — bimodal page-fault handling cost microbenchmark |
//! | `scaleup` | §V-B — inherent scalability on one large scale-up machine |
//! | `ablation`| design-choice studies: leader–follower, RDMA strategy, optimization deltas |
//!
//! Run any of them with `cargo run -p dex-bench --release --bin <name>`.
//! The `benches/` directory additionally holds criterion benchmarks of the
//! simulator's host-side performance.
//!
//! Every binary also distills its run into a machine-readable
//! `BENCH_<name>.json` result in one stable schema ([`BenchResult`]),
//! written to `DEX_BENCH_OUT` (default: the current directory). The
//! `dex-check perf` subcommand diffs those files against the committed
//! baselines with tolerance bands. `--smoke` (or `DEX_BENCH_SMOKE=1`)
//! selects the reduced configuration the CI gate runs.
//!
//! Setting `DEX_BENCH_SPANS=<dir>` additionally records causal spans
//! during the representative runs and dumps each as a `# dex-spans v1`
//! trace (`SPANS_<name>.txt`) into that directory — the raw material for
//! `dex-prof diff` when the perf gate trips. Span recording is pure
//! bookkeeping on the simulator side, so the `BENCH_*.json` numbers are
//! bit-identical with or without it.

#![warn(missing_docs)]

mod perf;

pub use perf::{smoke, BenchResult, BENCH_SCHEMA};

use std::fmt::Write as _;
use std::path::PathBuf;

use dex_core::{ClusterConfig, RunReport};

/// Formats a simple aligned text table: `header` row then `rows`, each a
/// vector of cells. The first column is left-aligned, the rest right.
///
/// # Examples
///
/// ```
/// let t = dex_bench::render_table(
///     &["app", "x1", "x2"],
///     &[vec!["GRP".into(), "1.00".into(), "1.52".into()]],
/// );
/// assert!(t.contains("GRP"));
/// assert!(t.contains("x2"));
/// ```
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    for (i, h) in header.iter().enumerate() {
        if i == 0 {
            let _ = write!(out, "{:<w$}", h, w = widths[i]);
        } else {
            let _ = write!(out, "  {:>w$}", h, w = widths[i]);
        }
    }
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i == 0 {
                let _ = write!(out, "{:<w$}", cell, w = widths[i]);
            } else {
                let _ = write!(out, "  {:>w$}", cell, w = widths[i]);
            }
        }
        out.push('\n');
    }
    out
}

/// The span-dump directory named by `DEX_BENCH_SPANS`, when set and
/// non-empty. Bench binaries treat this as the opt-in switch for
/// recording span traces alongside their `BENCH_*.json` results.
pub fn spans_dir() -> Option<PathBuf> {
    match std::env::var("DEX_BENCH_SPANS") {
        Ok(dir) if !dir.is_empty() => Some(PathBuf::from(dir)),
        _ => None,
    }
}

/// Turns on causal-span recording when `DEX_BENCH_SPANS` requests a
/// dump. Spans are schedule-neutral bookkeeping, so the run's virtual
/// time and counters are unchanged either way.
#[must_use]
pub fn with_spans_if_requested(config: ClusterConfig) -> ClusterConfig {
    if spans_dir().is_some() {
        config.with_spans()
    } else {
        config
    }
}

/// Writes `report`'s span trace as `SPANS_<name>.txt` (the
/// `# dex-spans v1` codec) into the `DEX_BENCH_SPANS` directory and
/// returns the path; `Ok(None)` when no dump was requested.
pub fn write_spans(name: &str, report: &RunReport) -> std::io::Result<Option<PathBuf>> {
    let Some(dir) = spans_dir() else {
        return Ok(None);
    };
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("SPANS_{name}.txt"));
    std::fs::write(&path, dex_prof::encode_spans(&report.spans))?;
    eprintln!("wrote {}", path.display());
    Ok(Some(path))
}

/// Parses `--flag value` style arguments from `std::env::args`.
pub fn arg_value(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
    }
    None
}

/// Returns `true` when `--flag` is present.
pub fn arg_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = render_table(
            &["name", "v"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].starts_with("long-name"));
        assert!(lines[1].chars().all(|c| c == '-'));
    }

    #[test]
    fn arg_helpers_do_not_crash() {
        assert_eq!(arg_value("--definitely-not-set"), None);
        assert!(!arg_flag("--definitely-not-set"));
    }
}
