//! # DEX — Distributed eXecution environment (reproduction)
//!
//! This facade crate re-exports every layer of the DEX reproduction so that
//! examples, integration tests, and downstream users can depend on a single
//! crate:
//!
//! * [`sim`] — deterministic discrete-event simulation kernel (virtual time,
//!   simulated threads, shared resources).
//! * [`net`] — simulated InfiniBand messaging layer (VERB send/recv with
//!   buffer pools, RDMA sink, latency/bandwidth cost model).
//! * [`os`] — simulated per-node operating-system substrate (page tables,
//!   VMAs, futexes, radix trees).
//! * [`core`] — the DEX contribution itself: transparent thread migration,
//!   work delegation, and the page-granularity sequential-consistency
//!   protocol with leader–follower fault coalescing.
//! * [`prof`] — the page-fault profiling toolchain used to find and remove
//!   false page sharing.
//! * [`apps`] — the eight evaluation applications (GRP, KMN, BT, EP, FT,
//!   BLK, BFS, BP) in baseline / initial / optimized variants.
//!
//! ## Quickstart
//!
//! ```rust
//! use dex::core::{Cluster, ClusterConfig};
//!
//! // Build a 2-node cluster, run one process whose single thread migrates
//! // to node 1, increments a distributed counter, and comes home.
//! let cluster = Cluster::new(ClusterConfig::new(2));
//! let report = cluster.run(|proc_| {
//!     let counter = proc_.alloc_cell::<u64>(0);
//!     proc_.spawn(move |ctx| {
//!         ctx.migrate(1).expect("migrate to node 1");
//!         let v = counter.get(ctx);
//!         counter.set(ctx, v + 1);
//!         ctx.migrate_back().expect("return to origin");
//!         assert_eq!(counter.get(ctx), 1);
//!     });
//! });
//! assert!(report.stats.forward_migrations >= 1);
//! ```

pub use dex_apps as apps;
pub use dex_core as core;
pub use dex_net as net;
pub use dex_os as os;
pub use dex_prof as prof;
pub use dex_sim as sim;
