//! Relocating the computation near the data — the paper's conclusion
//! (§VII) names this as the scenario DEX's execution-relocation capability
//! unlocks: instead of pulling gigabytes of remotely-owned pages through
//! the consistency protocol, a thread simply moves itself to where the
//! data lives.
//!
//! A producer on node 3 builds a large working set; a consumer then
//! aggregates it twice — once by faulting every page across the fabric,
//! once by asking the ownership directory where the data is
//! (`migrate_to_data`) and hopping there.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example compute_near_data
//! ```

use dex::core::{Cluster, ClusterConfig, DsmVec, NodeId, ThreadCtx};
use dex::sim::SimDuration;

const ELEMS: usize = 256 * 512; // 256 pages of u64

fn produce(ctx: &ThreadCtx<'_>, data: DsmVec<u64>) {
    ctx.migrate(3).expect("node 3 exists");
    let chunk: Vec<u64> = (0..512u64).collect();
    for page in 0..ELEMS / 512 {
        data.write_slice(ctx, page * 512, &chunk);
    }
    ctx.compute_ops(100_000);
}

fn consume(ctx: &ThreadCtx<'_>, data: DsmVec<u64>) -> u64 {
    let mut buf = vec![0u64; 512];
    let mut sum = 0u64;
    for page in 0..ELEMS / 512 {
        data.read_slice(ctx, page * 512, &mut buf);
        ctx.compute_ops(1_024);
        sum = sum.wrapping_add(buf.iter().sum::<u64>());
    }
    sum
}

fn run(follow_data: bool) -> (u64, SimDuration, u64) {
    let cluster = Cluster::new(ClusterConfig::new(4));
    let result = std::sync::Arc::new(std::sync::Mutex::new((0u64, SimDuration::ZERO)));
    let result2 = std::sync::Arc::clone(&result);
    let report = cluster.run(move |p| {
        let data = p.alloc_vec_aligned::<u64>(ELEMS, "working_set");
        let done = p.new_barrier(2, "produced");
        p.spawn(move |ctx| {
            produce(ctx, data);
            done.wait(ctx);
        });
        let result = std::sync::Arc::clone(&result2);
        p.spawn(move |ctx| {
            ctx.migrate(1).expect("node 1 exists"); // consumer starts far away
            done.wait(ctx);
            let t0 = ctx.sim().now();
            if follow_data {
                let home = ctx.migrate_to_data(data.addr()).expect("owner exists");
                assert_eq!(home, NodeId(3), "the producer's node owns the data");
            }
            let sum = consume(ctx, data);
            *result.lock().unwrap() = (sum, ctx.sim().now() - t0);
        });
    });
    let (sum, elapsed) = *result.lock().unwrap();
    (sum, elapsed, report.stats.pages_sent)
}

fn main() {
    let expected = (0..512u64).sum::<u64>() * (ELEMS as u64 / 512);

    let (sum_pull, t_pull, pages_pull) = run(false);
    assert_eq!(sum_pull, expected);
    let (sum_follow, t_follow, pages_follow) = run(true);
    assert_eq!(sum_follow, expected);

    println!("aggregate a 1 MiB working set owned by node 3:\n");
    println!("  pull the data  (stay on node 1): {t_pull:>10}  {pages_pull} pages moved");
    println!("  follow the data (migrate_to_data): {t_follow:>9}  {pages_follow} pages moved");
    let speedup = t_pull.as_secs_f64() / t_follow.as_secs_f64();
    println!("\nmoving the thread beats moving the memory: {speedup:.1}x faster,");
    println!("one 160-byte context transfer instead of hundreds of 4 KiB pages.");
    assert!(speedup > 2.0, "following the data must win: {speedup:.2}");
    // Both runs pay ~256 page grants during production; the pull run adds
    // two page payloads per consumed page (flush to origin + grant).
    assert!(
        pages_pull - pages_follow > 400,
        "pulling must move ~512 more pages: {pages_pull} vs {pages_follow}"
    );
}
