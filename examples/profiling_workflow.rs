//! The false-sharing hunt, end to end, on a tiny synthetic program.
//!
//! Two unrelated counters end up on one page (the allocator packed them);
//! threads on different nodes each hammer their own counter, and the page
//! bounces. The profiler's report names both objects on the suspect page
//! and suggests the fix; applying it (page-aligned allocation) removes the
//! interference. This is §IV-B in miniature.
//!
//! The run also collects the observability layer introduced alongside
//! the fault trace: causal *spans* (where each fault's latency went,
//! stitched across nodes), cluster *metrics* (per-node and per-link
//! counters), and *continuous telemetry* — a virtual-time series
//! sampled every millisecond plus online health monitors, whose
//! fabric-queue alarm fires on the packed run (the bouncing page
//! saturates the links) and goes quiet once the counters are pulled
//! apart. The spans and the counter tracks export together as one
//! Chrome trace-event JSON for Perfetto.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example profiling_workflow
//! ```

use dex::core::{Cluster, ClusterConfig, DsmCell, HealthEventKind, RunReport};
use dex::prof::{
    export_chrome_trace_with_series, render_critical_path, render_report, render_top, Profile,
    ReportOptions,
};
use dex_sim::SimDuration;

fn run_workload(aligned: bool) -> RunReport {
    let cluster = Cluster::new(
        ClusterConfig::new(2)
            .with_trace()
            .with_spans()
            .with_metrics()
            .with_telemetry(SimDuration::from_millis(1)),
    );
    cluster.run(|p| {
        // Two per-node counters. Packed: same page. Aligned: own pages.
        let (red, blue): (DsmCell<u64>, DsmCell<u64>) = if aligned {
            (
                p.alloc_cell_aligned(0, "red_counter"),
                p.alloc_cell_aligned(0, "blue_counter"),
            )
        } else {
            (
                p.alloc_cell_tagged(0, "red_counter"),
                p.alloc_cell_tagged(0, "blue_counter"),
            )
        };
        let barrier = p.new_barrier(2, "start");
        p.spawn(move |ctx| {
            ctx.set_site("app.red_loop");
            barrier.wait(ctx);
            for _ in 0..300 {
                red.rmw(ctx, |v| v + 1);
                ctx.compute_ops(4_000);
            }
        });
        p.spawn(move |ctx| {
            ctx.set_site("app.blue_loop");
            ctx.migrate(1).expect("node 1 exists");
            barrier.wait(ctx);
            for _ in 0..300 {
                blue.rmw(ctx, |v| v + 1);
                ctx.compute_ops(4_000);
            }
        });
    })
}

fn main() {
    println!("step 1: run with the default (packed) allocation under tracing\n");
    let packed = run_workload(false);
    let (packed_time, trace) = (packed.virtual_time, &packed.trace);
    let profile = Profile::from_trace(trace);

    let suspects = profile.false_sharing_suspects();
    println!(
        "{}",
        render_report(
            &profile,
            &ReportOptions {
                top_pages: 3,
                top_sites: 3,
                timeline_bucket: SimDuration::from_millis(2),
            }
        )
    );
    assert!(
        !suspects.is_empty(),
        "the profiler must flag the shared page"
    );
    println!(
        "=> suspect page {} carries {:?} — pad them apart\n",
        suspects[0].vpn, suspects[0].tags
    );

    println!("step 2: ask the spans where the fault latency went\n");
    // The same run recorded causal spans: each fault's time decomposed
    // into origin-side directory handling, invalidation fan-out, and
    // requester-side fixup — stitched across node boundaries.
    let critical = render_critical_path(&packed.spans, 2);
    for line in critical.lines().take(16) {
        println!("{line}");
    }
    // Spans and the sampled counter tracks export as ONE Perfetto
    // trace: the ping-pong shows up as a sawtooth in dsm.faults_write
    // right under the span timeline.
    let chrome = export_chrome_trace_with_series(&packed.spans, packed.series.as_ref());
    let trace_path = std::env::temp_dir().join("dex-profiling-workflow.json");
    if std::fs::write(&trace_path, &chrome).is_ok() {
        println!(
            "\nfull timeline written to {} — open in ui.perfetto.dev\n",
            trace_path.display()
        );
    }

    // And the metrics registry counted the cluster-wide traffic.
    if let Some(metrics) = &packed.metrics {
        println!("step 3: cluster metrics of the packed run\n");
        for line in metrics.render().lines().take(14) {
            println!("{line}");
        }
        println!();
    }

    println!("step 4: the live telemetry already raised the alarm\n");
    // The 1 ms sampler fed the online health monitors while the run
    // was still going. False sharing bounces the page on every other
    // access, so the links carry an invalidation+transfer storm: the
    // fabric-queue monitor fires window after window, and each alarm
    // carries the causal span id of an exemplar operation — the entry
    // point into the timeline exported above. (The page-ping-pong
    // detector is tag-based and names *truly* shared objects; here the
    // two counters are distinct tags, which is exactly why it takes
    // the offline profiler to name the packed page.)
    for event in &packed.health {
        println!("  {event}");
    }
    assert!(
        packed
            .health
            .iter()
            .any(|e| e.kind == HealthEventKind::FabricQueueBuildup),
        "the packed run must trip the fabric-queue monitor"
    );
    let series = packed.series.as_ref().expect("telemetry was on");
    println!("\n…and the dashboard view of the hottest window:\n");
    for line in render_top(series, &packed.health, None).lines().take(20) {
        println!("{line}");
    }
    println!();

    println!("step 5: apply the fix (posix_memalign-style page alignment)\n");
    let aligned = run_workload(true);
    let (aligned_time, aligned_trace) = (aligned.virtual_time, &aligned.trace);
    let aligned_profile = Profile::from_trace(aligned_trace);
    // The counters must be off the suspect list. (The barrier's own two
    // words still share a page — synchronization objects are *true*
    // sharing and padding them apart would not help.)
    assert!(
        aligned_profile
            .false_sharing_suspects()
            .iter()
            .all(|s| !s.tags.iter().any(|t| t.contains("counter"))),
        "aligned counters must not be flagged"
    );
    // The fix also silences the live monitors: no page bounces, no alarm.
    assert!(
        aligned.health.is_empty(),
        "the aligned run must raise no health alarms: {:?}",
        aligned.health
    );

    println!("packed  : {packed_time}");
    println!("aligned : {aligned_time}");
    let gain = packed_time.as_secs_f64() / aligned_time.as_secs_f64();
    println!("speedup : {gain:.1}x from one allocation change");
    assert!(
        gain > 2.0,
        "removing false sharing should pay off: {gain:.2}"
    );
}
