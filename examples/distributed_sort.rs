//! Distributed sample sort — a fuller program written against the DEX
//! API: migration, prefetch hints, barriers, bulk slices, and a final
//! verification against `std` sorting.
//!
//! Phase 1: workers sample the input and agree on splitters (barrier).
//! Phase 2: each worker scans the whole input (read-only, so it
//!          replicates; the prefetch hint batches the page pulls) and
//!          collects the values in its key range.
//! Phase 3: each worker sorts its bucket locally and writes it to its own
//!          page-aligned output slab.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example distributed_sort
//! ```

use dex::core::{Access, Cluster, ClusterConfig};
use dex::sim::SimRng;

const N: usize = 64 * 1024;
const WORKERS: usize = 8;
const NODES: usize = 4;

fn main() {
    let mut rng = SimRng::new(2026);
    let input: Vec<u64> = (0..N).map(|_| rng.next_u64()).collect();
    let mut expected = input.clone();
    expected.sort_unstable();

    // Even splitters over the key space (u64 is uniform here; a real
    // sample sort would sample — the access pattern is the same).
    let splitters: Vec<u64> = (1..WORKERS as u64)
        .map(|i| i * (u64::MAX / WORKERS as u64))
        .collect();

    let cluster = Cluster::new(ClusterConfig::new(NODES));
    let mut outputs = Vec::new();
    let mut counts_handle = None;
    let input2 = input.clone();
    let report = cluster.run(|p| {
        let data = p.alloc_vec::<u64>(N, "input");
        data.init(p, &input2);
        let bucket_sizes = p.alloc_vec_aligned::<u64>(WORKERS * 512, "bucket_sizes");
        counts_handle = Some(bucket_sizes);
        for w in 0..WORKERS {
            // Generous per-worker slab (uniform keys: ~N/WORKERS each).
            outputs.push(p.alloc_vec_aligned::<u64>(N / WORKERS * 2, &format!("bucket_{w}")));
        }
        let outputs = outputs.clone();
        let splitters = splitters.clone();
        let phase = p.new_barrier(WORKERS as u32, "phase");

        for w in 0..WORKERS {
            let splitters = splitters.clone();
            let out = outputs[w];
            p.spawn(move |ctx| {
                ctx.migrate((w % NODES) as u16).expect("node exists");
                ctx.set_site("sort.scan");

                // Phase 2: pull the read-only input once, in bulk.
                ctx.prefetch(data.addr(), (N * 8) as u64, Access::Read);
                phase.wait(ctx);

                let lo = if w == 0 { 0 } else { splitters[w - 1] };
                let hi = if w == WORKERS - 1 {
                    u64::MAX
                } else {
                    splitters[w]
                };
                let mut bucket = Vec::new();
                let mut buf = vec![0u64; 2048];
                let mut i = 0;
                while i < N {
                    let n = 2048.min(N - i);
                    data.read_slice(ctx, i, &mut buf[..n]);
                    ctx.compute_ops(n as u64 * 4);
                    for &v in &buf[..n] {
                        if v >= lo && (v < hi || (w == WORKERS - 1 && v == u64::MAX)) {
                            bucket.push(v);
                        }
                    }
                    i += n;
                }

                // Phase 3: local sort, publish to the aligned slab.
                ctx.set_site("sort.local_sort");
                bucket.sort_unstable();
                let ops = (bucket.len() as u64).max(1);
                ctx.compute_ops(ops * 64); // n log n-ish
                out.write_slice(ctx, 0, &bucket);
                bucket_sizes.set(ctx, w * 512, bucket.len() as u64);
                phase.wait(ctx);
                ctx.migrate_back().expect("origin exists");
            });
        }
    });

    // Stitch the buckets together and verify.
    let sizes = counts_handle.expect("allocated").snapshot(&report);
    let mut sorted = Vec::with_capacity(N);
    for (w, out) in outputs.iter().enumerate() {
        let len = sizes[w * 512] as usize;
        sorted.extend(out.snapshot(&report).into_iter().take(len));
    }
    assert_eq!(sorted.len(), N);
    assert_eq!(sorted, expected, "distributed sort must match std sort");

    println!("sorted {N} keys across {NODES} nodes / {WORKERS} workers");
    println!("virtual time ......... {}", report.virtual_time);
    println!("pages moved .......... {}", report.stats.pages_sent);
    println!("prefetched pages ..... {}", report.stats.read_faults);
    println!("result matches std::sort ✔");
}
