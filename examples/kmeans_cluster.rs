//! K-means across a rack, with the profiling workflow from §IV.
//!
//! Runs the paper's KMN application in its *initial* (blindly converted)
//! form under the page-fault profiler, prints the analyses a developer
//! would use to find the bottlenecks, then runs the *optimized* form and
//! shows the improvement — the full §IV → §V-C loop in one binary.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example kmeans_cluster
//! ```

use dex::apps::{kmn, reference_checksum, AppParams, Variant};
use dex::prof::{render_report, Profile, ReportOptions};
use dex_sim::SimDuration;

fn main() {
    let nodes = 4;

    // Step 1: run the blind conversion under tracing.
    let initial_params = AppParams::new(nodes, Variant::Initial).with_trace();
    let initial = kmn::run(&initial_params);
    assert_eq!(
        initial.checksum,
        reference_checksum("KMN", &initial_params),
        "distributed k-means must match the sequential reference"
    );
    println!(
        "initial port: {} on {} nodes ({} faults, {} invalidations)\n",
        initial.elapsed,
        nodes,
        initial.stats.total_faults(),
        initial.stats.invalidations
    );

    // Step 2: profile — what is causing the cross-node traffic?
    let profile = Profile::from_trace(&initial.report.trace);
    let options = ReportOptions {
        top_pages: 5,
        top_sites: 5,
        timeline_bucket: SimDuration::from_millis(5),
    };
    println!("{}", render_report(&profile, &options));

    // Step 3: the optimized port (staged updates, page-aligned objects).
    let optimized_params = AppParams::new(nodes, Variant::Optimized);
    let optimized = kmn::run(&optimized_params);
    assert_eq!(
        optimized.checksum,
        reference_checksum("KMN", &optimized_params)
    );

    let baseline = kmn::run(&AppParams::new(1, Variant::Baseline));
    let speedup_initial = baseline.elapsed.as_secs_f64() / initial.elapsed.as_secs_f64();
    let speedup_optimized = baseline.elapsed.as_secs_f64() / optimized.elapsed.as_secs_f64();

    println!("single-machine baseline : {}", baseline.elapsed);
    println!(
        "initial on {nodes} nodes    : {} ({speedup_initial:.2}x)",
        initial.elapsed
    );
    println!(
        "optimized on {nodes} nodes  : {} ({speedup_optimized:.2}x)",
        optimized.elapsed
    );
    println!(
        "\nwrite faults {} -> {}: staging centroid updates locally and",
        initial.stats.write_faults, optimized.stats.write_faults
    );
    println!("aligning per-thread data removed the page ping-pong (§V-C).");
}
