//! Graph analytics beyond one machine: BFS and belief propagation.
//!
//! The paper's Polymer applications show the two faces of DEX: BP is
//! memory-bandwidth bound and scales super-linearly once its working set
//! spreads over more memory systems; BFS is dominated by fine-grained
//! remote writes and stays below single-machine performance even after
//! Polymer's NUMA-style optimization.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example graph_analytics
//! ```

use dex::apps::{bfs, bp, reference_checksum, AppParams, Variant};

fn main() {
    println!("== BP: belief propagation (bandwidth-bound sweeps) ==\n");
    let bp_base = bp::run(&AppParams::new(1, Variant::Baseline));
    for nodes in [2, 4, 8] {
        let params = AppParams::new(nodes, Variant::Initial);
        let run = bp::run(&params);
        assert_eq!(run.checksum, reference_checksum("BP", &params));
        let speedup = bp_base.elapsed.as_secs_f64() / run.elapsed.as_secs_f64();
        let marker = if speedup > nodes as f64 {
            "  <- super-linear"
        } else {
            ""
        };
        println!(
            "  {nodes} nodes: {} ({speedup:.2}x vs 1-node baseline){marker}",
            run.elapsed
        );
    }
    println!("\n  One node saturates its memory channels; spreading the sweep");
    println!("  aggregates bandwidth and shrinks each node's working set");
    println!("  toward its cache — the paper measured 3.84x from 1 to 2 nodes.\n");

    println!("== BFS: breadth-first search (scattered discovery writes) ==\n");
    let bfs_base = bfs::run(&AppParams::new(1, Variant::Baseline));
    for variant in [Variant::Initial, Variant::Optimized] {
        let params = AppParams::new(2, variant);
        let run = bfs::run(&params);
        assert_eq!(run.checksum, reference_checksum("BFS", &params));
        let speedup = bfs_base.elapsed.as_secs_f64() / run.elapsed.as_secs_f64();
        println!(
            "  {variant:9} on 2 nodes: {} ({speedup:.2}x), {} invalidations",
            run.elapsed, run.stats.invalidations
        );
    }
    println!("\n  Partitioning edges by destination makes every discovery write");
    println!("  node-local (fewer invalidations), but frontier reads still");
    println!("  cross nodes every level — BFS improves yet stays below 1x,");
    println!("  exactly the paper's outcome.");
}
