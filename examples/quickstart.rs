//! Quickstart: convert a "single-machine" program to span two nodes.
//!
//! The paper's pitch is that conversion is one function call per
//! direction: a thread calls `migrate(node)` at the start of its parallel
//! work and `migrate_back()` at the end, and keeps using shared memory and
//! ordinary synchronization as if nothing happened.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dex::core::{Cluster, ClusterConfig};

fn main() {
    // A simulated rack of two 8-core nodes connected by 56 Gb/s fabric.
    let cluster = Cluster::new(ClusterConfig::new(2));

    let mut sums = None;
    let report = cluster.run(|proc_| {
        // "Load" the input on the origin node, like any normal program.
        let data = proc_.alloc_vec::<u64>(100_000, "input");
        data.init(proc_, &(0..100_000u64).collect::<Vec<_>>());

        // One result slot per worker, each on its own page.
        let partials = proc_.alloc_vec_aligned::<u64>(2 * 512, "partials");
        sums = Some(partials);

        for worker in 0..2u16 {
            proc_.spawn(move |ctx| {
                // === the one added line: relocate to the assigned node ===
                ctx.migrate(worker).expect("node exists");

                // Ordinary shared-memory code: sum half of the input.
                let len = data.len();
                let (first, last) = (worker as usize * len / 2, (worker as usize + 1) * len / 2);
                let mut buf = vec![0u64; 1024];
                let mut sum = 0u64;
                let mut i = first;
                while i < last {
                    let n = 1024.min(last - i);
                    data.read_slice(ctx, i, &mut buf[..n]);
                    ctx.compute_ops(n as u64 * 4);
                    sum += buf[..n].iter().sum::<u64>();
                    i += n;
                }
                partials.set(ctx, worker as usize * 512, sum);

                // === and the matching one to come home ===
                ctx.migrate_back().expect("origin exists");
            });
        }
    });

    let partials = sums.expect("allocated").snapshot(&report);
    let total = partials[0] + partials[512];
    assert_eq!(total, (0..100_000u64).sum::<u64>());

    println!("distributed sum ........ {total}");
    println!("virtual time ........... {}", report.virtual_time);
    println!(
        "forward migrations ..... {}",
        report.stats.forward_migrations
    );
    println!("pages moved ............ {}", report.stats.pages_sent);
    println!("protocol faults ........ {}", report.stats.total_faults());
    println!("\nThe worker on node 1 pulled its half of the input on demand");
    println!("(read-replication) and pushed one result page back — no message");
    println!("passing, no data layout changes, two added lines of code.");
}
