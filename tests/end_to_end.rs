//! Cross-crate integration tests through the `dex` facade: simulator +
//! fabric + OS substrate + protocol + profiler + applications together.

use dex::apps::{reference_checksum, run_app, AppParams, Variant, ALL_APPS};
use dex::core::{Cluster, ClusterConfig, NodeId};
use dex::prof::Profile;
use dex::sim::SimDuration;

#[test]
fn every_application_is_correct_on_three_nodes() {
    // The headline correctness claim: all eight applications compute the
    // same answers distributed as the sequential reference, in both
    // variants. (Test scale keeps this fast.)
    for app in ALL_APPS {
        for variant in [Variant::Initial, Variant::Optimized] {
            let params = AppParams::test(3, variant);
            let result = run_app(app, &params);
            assert_eq!(
                result.checksum,
                reference_checksum(app, &params),
                "{app} {variant} diverged from the sequential reference"
            );
        }
    }
}

#[test]
fn applications_are_deterministic_across_runs() {
    for app in ["GRP", "BP"] {
        let params = AppParams::test(2, Variant::Optimized);
        let a = run_app(app, &params);
        let b = run_app(app, &params);
        assert_eq!(a.elapsed, b.elapsed, "{app} virtual time must repeat");
        assert_eq!(a.checksum, b.checksum);
        assert_eq!(a.stats, b.stats, "{app} protocol stats must repeat");
    }
}

#[test]
fn profiler_attributes_app_traffic_to_objects() {
    let params = AppParams::test(2, Variant::Initial).with_trace();
    let result = run_app("KMN", &params);
    let profile = Profile::from_trace(&result.report.trace);
    assert!(profile.events() > 0, "KMN initial must fault");
    // The shared accumulators must surface in the hot pages.
    let hot_tags: Vec<String> = profile
        .hot_pages()
        .into_iter()
        .take(3)
        .flat_map(|(_, s)| s.tags.iter().cloned().collect::<Vec<_>>())
        .collect();
    assert!(
        hot_tags
            .iter()
            .any(|t| t.contains("centroid") || t.contains("changed")),
        "hot pages should name the accumulators: {hot_tags:?}"
    );
}

#[test]
fn migration_and_memory_compose_across_all_nodes() {
    // One thread walks the whole rack, carrying a counter through every
    // node's memory system.
    let cluster = Cluster::new(ClusterConfig::new(8));
    let mut cell = None;
    let report = cluster.run(|p| {
        let c = p.alloc_cell_tagged::<u64>(0, "walker");
        cell = Some(c);
        p.spawn(move |ctx| {
            for hop in 0..8u16 {
                ctx.migrate(hop).expect("node exists");
                assert_eq!(ctx.node(), NodeId(hop));
                c.rmw(ctx, |v| v + 1);
            }
            ctx.migrate_back().expect("home");
        });
    });
    assert_eq!(cell.unwrap().snapshot(&report), 8);
    // 7 forward hops (node 0 is home); remote-to-remote goes home first.
    assert_eq!(report.stats.forward_migrations, 7);
}

#[test]
fn delegated_synchronization_spans_the_facade() {
    // Producer/consumer across nodes using only mutex + condvar.
    let cluster = Cluster::new(ClusterConfig::new(3));
    let mut out = None;
    let report = cluster.run(|p| {
        let queue = p.alloc_vec_aligned::<u64>(16, "queue");
        let head = p.alloc_cell_tagged::<u32>(0, "head");
        let consumed = p.alloc_cell_tagged::<u64>(0, "consumed_sum");
        out = Some(consumed);
        let mutex = p.new_mutex("queue_lock");
        let cv = p.new_condvar("queue_cv");
        p.spawn(move |ctx| {
            ctx.migrate(1).expect("node 1");
            for i in 0..16u64 {
                mutex.lock(ctx);
                let h = head.get(ctx);
                queue.set(ctx, h as usize, i * i);
                head.set(ctx, h + 1);
                cv.notify_one(ctx);
                mutex.unlock(ctx);
                ctx.compute_ops(10_000);
            }
        });
        p.spawn(move |ctx| {
            ctx.migrate(2).expect("node 2");
            let mut taken = 0u32;
            let mut sum = 0u64;
            while taken < 16 {
                mutex.lock(ctx);
                while head.get(ctx) <= taken {
                    cv.wait(ctx, &mutex);
                }
                sum += queue.get(ctx, taken as usize);
                taken += 1;
                mutex.unlock(ctx);
            }
            consumed.set(ctx, sum);
        });
    });
    let expected: u64 = (0..16u64).map(|i| i * i).sum();
    assert_eq!(out.unwrap().snapshot(&report), expected);
    assert!(report.stats.delegations > 0, "futexes were delegated");
}

#[test]
fn fault_histogram_reaches_report_consumers() {
    let cluster = Cluster::new(ClusterConfig::new(2));
    let report = cluster.run(|p| {
        let v = p.alloc_vec::<u64>(4096, "data");
        p.spawn(move |ctx| {
            ctx.migrate(1).expect("node 1");
            for i in 0..v.len() {
                v.set(ctx, i, 1);
            }
        });
    });
    assert!(report.fault_hist.count() >= 8, "one fault per page");
    assert!(report.fault_hist.mean() > SimDuration::from_micros(5));
    assert!(report.fault_hist.mean() < SimDuration::from_micros(60));
}
