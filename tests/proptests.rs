//! Property-based tests on the reproduction's core invariants.

use proptest::prelude::*;

use dex::core::{Cluster, ClusterConfig};
use dex::os::{ExecutionContext, Prot, RadixTree, VirtAddr, VmaKind, VmaSet, PAGE_SIZE};

// ---------------------------------------------------------------- radix --

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The radix tree behaves exactly like a BTreeMap under arbitrary
    /// insert/get/remove sequences over page-number-shaped keys.
    #[test]
    fn radix_tree_matches_btreemap(ops in proptest::collection::vec(
        (0u8..3, 0u64..1 << 40), 1..300
    )) {
        let mut tree = RadixTree::new();
        let mut model = std::collections::BTreeMap::new();
        for (op, key) in ops {
            match op {
                0 => prop_assert_eq!(tree.insert(key, key), model.insert(key, key)),
                1 => prop_assert_eq!(tree.get(key), model.get(&key)),
                _ => prop_assert_eq!(tree.remove(key), model.remove(&key)),
            }
            prop_assert_eq!(tree.len(), model.len());
        }
        let got: Vec<(u64, u64)> = tree.iter().map(|(k, v)| (k, *v)).collect();
        let want: Vec<(u64, u64)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(got, want);
    }

    /// Execution contexts survive serialization bit-exactly for any
    /// register contents.
    #[test]
    fn execution_context_roundtrips(regs in proptest::array::uniform16(any::<u64>()),
                                    ip in any::<u64>(), sp in any::<u64>()) {
        let ctx = ExecutionContext { regs, ip, sp, flags: 0x246, fs_base: 0 };
        let decoded = ExecutionContext::from_bytes(&ctx.to_bytes());
        prop_assert_eq!(decoded, Some(ctx));
    }
}

// ----------------------------------------------------------------- vma --

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After any sequence of page-aligned mmap/munmap operations, `find`
    /// agrees with a page-level model of what is mapped.
    #[test]
    fn vma_set_matches_page_model(ops in proptest::collection::vec(
        (any::<bool>(), 0u64..64, 1u64..8), 1..60
    )) {
        let mut set = VmaSet::new();
        let mut model = [false; 128];
        for (map, page, len) in ops {
            let addr = VirtAddr::new(page * PAGE_SIZE as u64);
            let bytes = len * PAGE_SIZE as u64;
            if map {
                // mmap_fixed fails on overlap; only apply when free.
                let free = (page..page + len).all(|p| !model[p as usize]);
                let result = set.mmap_fixed(addr, bytes, Prot::RW, VmaKind::Anon, None);
                prop_assert_eq!(result.is_ok(), free);
                if free {
                    for p in page..page + len {
                        model[p as usize] = true;
                    }
                }
            } else {
                set.munmap(addr, bytes).expect("aligned munmap");
                for p in page..page + len {
                    model[p as usize] = false;
                }
            }
            for (p, mapped) in model.iter().enumerate() {
                let probe = VirtAddr::new(p as u64 * PAGE_SIZE as u64 + 17);
                prop_assert_eq!(
                    set.find(probe).is_some(),
                    *mapped,
                    "page {} mapping state diverged", p
                );
            }
        }
    }
}

// ------------------------------------------------------- dsm coherence --

/// One thread hops nodes at random and performs random reads/writes; the
/// observed values must match a flat byte-array model — sequential
/// consistency for a single mover, end to end through migration, VMA
/// sync, and the ownership protocol.
#[derive(Clone, Debug)]
enum DsmOp {
    Write { offset: usize, value: u64 },
    Read { offset: usize },
    Migrate { node: u16 },
}

fn dsm_op() -> impl Strategy<Value = DsmOp> {
    prop_oneof![
        (0usize..4000, any::<u64>()).prop_map(|(offset, value)| DsmOp::Write {
            offset: offset * 8,
            value
        }),
        (0usize..4000).prop_map(|offset| DsmOp::Read { offset: offset * 8 }),
        (0u16..4).prop_map(|node| DsmOp::Migrate { node }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn single_mover_sees_sequential_memory(ops in proptest::collection::vec(dsm_op(), 1..80)) {
        let cluster = Cluster::new(ClusterConfig::new(4));
        let ops2 = ops.clone();
        cluster.run(|p| {
            let region = p.alloc_vec::<u64>(4000, "region");
            p.spawn(move |ctx| {
                let mut model = vec![0u64; 4000];
                for op in &ops2 {
                    match op {
                        DsmOp::Write { offset, value } => {
                            region.set(ctx, offset / 8, *value);
                            model[offset / 8] = *value;
                        }
                        DsmOp::Read { offset } => {
                            let got = region.get(ctx, offset / 8);
                            assert_eq!(
                                got, model[offset / 8],
                                "read at {offset} diverged from model"
                            );
                        }
                        DsmOp::Migrate { node } => {
                            ctx.migrate(*node).expect("node exists");
                        }
                    }
                }
            });
        });
    }

    /// Two threads on different nodes alternate turns under a mutex; the
    /// interleaved writes must linearize exactly like the sequential
    /// model (multi-writer coherence).
    #[test]
    fn lock_step_writers_linearize(values in proptest::collection::vec(any::<u64>(), 2..40)) {
        let cluster = Cluster::new(ClusterConfig::new(2));
        let n = values.len();
        let values2 = values.clone();
        let mut log_handle = None;
        let report = cluster.run(|p| {
            let log = p.alloc_vec::<u64>(n, "log");
            log_handle = Some(log);
            let turn = p.alloc_cell_tagged::<u32>(0, "turn");
            for me in 0..2u16 {
                let values = values2.clone();
                p.spawn(move |ctx| {
                    ctx.migrate(me).expect("node exists");
                    loop {
                        let t = turn.get(ctx);
                        if t as usize >= n {
                            break;
                        }
                        if t % 2 != me as u32 {
                            // Not my turn: wait for the flag to move.
                            ctx.compute_ops(2_000);
                            continue;
                        }
                        log.set(ctx, t as usize, values[t as usize]);
                        turn.set(ctx, t + 1);
                    }
                });
            }
        });
        let got = log_handle.unwrap().snapshot(&report);
        prop_assert_eq!(got, values);
    }
}
