//! Offline drop-in shim for the subset of `proptest` this workspace uses.
//!
//! The build environment has no access to crates.io, so property tests run
//! against this self-contained reimplementation: deterministic
//! pseudo-random case generation (seeded from the test name, so every run
//! and every machine explores the same cases), the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` / `prop_oneof!` macros, and the
//! strategy combinators the tests call (`prop_map`, ranges, tuples,
//! `collection::vec`, `array::uniform16`, `any`).
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports its seed and case index; the
//!   deterministic RNG means rerunning reproduces it exactly.
//! * **No persistence files.** Determinism makes them unnecessary.

#![warn(missing_docs)]

/// Deterministic test-case RNG (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "below(0)");
        // Multiply-shift bounded sampling (Lemire); bias is negligible for
        // test-case generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::TestRng;

    /// A recipe for generating values of a type.
    ///
    /// Object-safe (combinators are `Self: Sized`), so `prop_oneof!` can
    /// box heterogeneous strategies with a common value type.
    pub trait Strategy {
        /// The type of value generated.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Boxes the strategy behind a trait object.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A boxed, type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among boxed strategies (`prop_oneof!` backend).
    pub struct Union<T> {
        choices: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union from its choices.
        ///
        /// # Panics
        ///
        /// Panics if `choices` is empty.
        pub fn new(choices: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!choices.is_empty(), "prop_oneof! needs at least one arm");
            Union { choices }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.choices.len() as u64) as usize;
            self.choices[idx].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128 - self.start as u128) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u128 - lo as u128 + 1) as u64;
                    if span == 0 {
                        // Full-width inclusive range.
                        rng.next_u64() as $t
                    } else {
                        lo.wrapping_add(rng.below(span) as $t)
                    }
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Generates an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy produced by [`any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// An arbitrary value of `T` (shim of `proptest::prelude::any`).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::TestRng;

    /// Strategy for `Vec<T>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// A vector whose length is drawn from `len` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty vec length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod array {
    //! Fixed-size array strategies.

    use super::strategy::Strategy;
    use super::TestRng;

    macro_rules! uniform_array {
        ($name:ident, $n:literal) => {
            /// Strategy for `[T; N]` with every element from one strategy.
            pub fn $name<S: Strategy>(element: S) -> UniformArray<S, $n> {
                UniformArray { element }
            }
        };
    }

    /// Strategy generating arrays element-wise from one inner strategy.
    pub struct UniformArray<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];
        fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
            std::array::from_fn(|_| self.element.generate(rng))
        }
    }

    uniform_array!(uniform4, 4);
    uniform_array!(uniform8, 8);
    uniform_array!(uniform16, 16);
    uniform_array!(uniform32, 32);
}

pub mod test_runner {
    //! Case execution: configuration, failure reporting, the runner.

    use super::TestRng;

    /// Number of cases to run per property (shim of `ProptestConfig`).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Cases to execute.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// A failed property assertion.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Builds a failure with a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    /// Drives the case loop for one property.
    pub struct Runner {
        cases: u32,
        case: u32,
        seed: u64,
        name: &'static str,
    }

    impl Runner {
        /// Creates a runner for the named property.
        pub fn new(config: Config, name: &'static str) -> Self {
            // Deterministic seed from the property name (FNV-1a), so every
            // run explores the same cases.
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Runner {
                cases: config.cases,
                case: 0,
                seed,
                name,
            }
        }

        /// Number of cases to run.
        pub fn cases(&self) -> u32 {
            self.cases
        }

        /// RNG for the next case (deterministic per (property, case)).
        pub fn next_rng(&mut self) -> TestRng {
            let case = self.case;
            self.case += 1;
            TestRng::new(
                self.seed
                    .wrapping_add(case as u64)
                    .wrapping_mul(0x2545_F491_4F6C_DD1D),
            )
        }

        /// Panics with attribution if the case failed.
        ///
        /// # Panics
        ///
        /// Panics when `result` is an error (that is the point).
        pub fn check(&self, result: Result<(), TestCaseError>) {
            if let Err(TestCaseError(msg)) = result {
                panic!(
                    "property `{}` failed at case {} (seed {:#x}): {}",
                    self.name,
                    self.case.saturating_sub(1),
                    self.seed,
                    msg
                );
            }
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares deterministic property tests (shim of `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut runner = $crate::test_runner::Runner::new(config, stringify!($name));
            for _ in 0..runner.cases() {
                let mut rng = runner.next_rng();
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let result = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                runner.check(result);
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::Config::default()); $($rest)*);
    };
}

/// Asserts a condition inside a property, failing the case (not the whole
/// process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {:?} != {:?}: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// Uniform choice among strategies with a common value type (shim of
/// `proptest::prop_oneof!`).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(::std::boxed::Box::new($strat) as ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,)+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::new(7);
        for _ in 0..1000 {
            let v = Strategy::generate(&(3u8..9), &mut rng);
            assert!((3..9).contains(&v));
            let w = Strategy::generate(&(0u64..1 << 40), &mut rng);
            assert!(w < 1 << 40);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::test_runner::Runner::new(ProptestConfig::with_cases(4), "x");
        let mut b = crate::test_runner::Runner::new(ProptestConfig::with_cases(4), "x");
        assert_eq!(a.next_rng().next_u64(), b.next_rng().next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_lengths_in_range(v in crate::collection::vec(0u8..10, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5, "len {}", v.len());
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn tuples_and_maps_compose(
            (a, b) in (0u16..4, 0u16..4),
            c in crate::prop_oneof![(0u32..1).prop_map(|_| 7u32), (0u32..1).prop_map(|_| 9u32)],
        ) {
            prop_assert!(a < 4 && b < 4);
            prop_assert!(c == 7u32 || c == 9u32);
        }

        #[test]
        fn arrays_fill_every_slot(a in crate::array::uniform16(any::<u64>())) {
            prop_assert_eq!(a.len(), 16);
        }
    }
}
