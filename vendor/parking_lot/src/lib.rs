//! Offline drop-in shim for the subset of the `parking_lot` API this
//! workspace uses, backed by `std::sync`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the handful of primitives it needs. Semantics match
//! `parking_lot` where they matter to callers:
//!
//! * `lock()` returns the guard directly (no poisoning `Result`) —
//!   poisoned std locks are recovered transparently, matching
//!   `parking_lot`'s panic-transparent behavior.
//! * Guards are `Deref`/`DerefMut` exactly like the real crate.
//!
//! Only [`Mutex`], [`RwLock`], and [`Condvar`] are provided; extend this
//! shim if a new call site needs more surface.

#![warn(missing_docs)]

use std::sync::TryLockError;

/// A mutual-exclusion primitive (std-backed `parking_lot::Mutex` shim).
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available. Unlike
    /// `std::sync::Mutex`, never returns a poisoning error.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (no locking
    /// needed: the borrow is exclusive).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A readers–writer lock (std-backed `parking_lot::RwLock` shim).
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-access guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive-access guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires exclusive access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A condition variable (std-backed `parking_lot::Condvar` shim).
#[derive(Default, Debug)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks on `guard` until notified. The guard is re-acquired before
    /// returning (mutated in place, matching `parking_lot`'s signature).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // Safety dance: std's API consumes and returns the guard; emulate
        // the in-place signature by round-tripping through a temporary.
        replace_with(guard, |g| match self.inner.wait(g) {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        });
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all blocked waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// In-place value replacement helper for the condvar shim. Aborts the
/// process if `f` panics (std's wait only panics on poisoned re-lock,
/// which we translate away, so this is unreachable in practice).
fn replace_with<T>(slot: &mut T, f: impl FnOnce(T) -> T) {
    struct Abort;
    impl Drop for Abort {
        fn drop(&mut self) {
            std::process::abort();
        }
    }
    let bomb = Abort;
    unsafe {
        let old = std::ptr::read(slot);
        let new = f(old);
        std::ptr::write(slot, new);
    }
    std::mem::forget(bomb);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_data() {
        let m = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn try_lock_contends() {
        let m = Mutex::new(5);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(*m.try_lock().unwrap(), 5);
    }

    #[test]
    fn rwlock_allows_parallel_readers() {
        let l = RwLock::new(7);
        let r1 = l.read();
        let r2 = l.read();
        assert_eq!(*r1 + *r2, 14);
        drop((r1, r2));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut started = lock.lock();
            while !*started {
                cvar.wait(&mut started);
            }
        });
        {
            let (lock, cvar) = &*pair;
            *lock.lock() = true;
            cvar.notify_one();
        }
        t.join().unwrap();
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(1));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        assert_eq!(*m.lock(), 1);
    }
}
