//! Offline drop-in shim for the subset of `criterion` this workspace uses.
//!
//! The build environment has no access to crates.io, so `cargo bench`
//! runs against this minimal harness: it times each benchmark body over a
//! fixed sample count and prints mean wall-clock time per iteration. No
//! statistical analysis, outlier rejection, or HTML reports — just honest
//! numbers, deterministically produced.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export of the standard black box (real criterion has its own).
pub use std::hint::black_box;

const DEFAULT_SAMPLES: usize = 20;

/// Benchmark registry/driver (shim of `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into(), DEFAULT_SAMPLES, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.into(),
            sample_size: DEFAULT_SAMPLES,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id.into()), self.sample_size, f);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to benchmark bodies; [`Bencher::iter`] times the closure.
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Times `f`, preventing the result from being optimized away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.elapsed += start.elapsed();
        self.iterations += 1;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, samples: usize, mut f: F) {
    // Warm-up pass (not timed).
    let mut warmup = Bencher::default();
    f(&mut warmup);

    let mut bencher = Bencher::default();
    for _ in 0..samples {
        f(&mut bencher);
    }
    let mean = if bencher.iterations > 0 {
        bencher.elapsed / bencher.iterations as u32
    } else {
        Duration::ZERO
    };
    println!(
        "bench {id:<48} {mean:>12.3?}/iter ({} iters)",
        bencher.iterations
    );
}

/// Declares the benchmark entry group (shim of `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main` (shim of `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion::default();
        let mut runs = 0u32;
        c.bench_function("shim_smoke", |b| b.iter(|| runs += 1));
        assert!(runs >= DEFAULT_SAMPLES as u32);
    }

    #[test]
    fn groups_respect_sample_size() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("inner", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 4, "1 warm-up + 3 samples");
    }
}
